package experiments

import (
	"strings"
	"testing"

	"costperf/internal/llama"
	"costperf/internal/ssd"
)

// The experiment tests assert the paper's qualitative shapes (who wins, in
// which direction the effect goes), not absolute numbers — our substrate
// is a simulator, not the authors' testbed.

func TestDeriveRShape(t *testing.T) {
	res, err := DeriveR(20000, []float64{0.05, 0.2, 0.5}, ssd.UserLevelPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.P0 <= 0 {
		t.Fatal("P0 not measured")
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Relative performance declines as F grows (Figure 1's shape).
	prev := 1.0
	for _, p := range res.Points {
		if p.RelPerf >= prev {
			t.Fatalf("relative performance did not decline: %+v", res.Points)
		}
		prev = p.RelPerf
		if p.MeasuredF <= 0 {
			t.Fatalf("no misses measured at target %v", p.TargetF)
		}
	}
	// R should be meaningful and broadly stable (paper: 5.8 ± 30% on their
	// hardware; ours is a simulator so we only require plausibility).
	if res.MeanR < 1.5 || res.MeanR > 60 {
		t.Fatalf("mean R = %v, implausible", res.MeanR)
	}
	for _, p := range res.Points {
		if p.R < res.MeanR*0.4 || p.R > res.MeanR*2.5 {
			t.Fatalf("R unstable across miss ratios: %+v", res.Points)
		}
	}
	if !strings.Contains(res.String(), "D1") {
		t.Fatal("String missing header")
	}
}

func TestKernelPathRaisesR(t *testing.T) {
	// Paper Section 7.1.1: the conventional OS I/O path produces a larger R.
	user, err := DeriveR(12000, []float64{0.3}, ssd.UserLevelPath)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := DeriveR(12000, []float64{0.3}, ssd.KernelPath)
	if err != nil {
		t.Fatal(err)
	}
	if kernel.MeanR <= user.MeanR {
		t.Fatalf("kernel R %v <= user R %v; paper: ~9 vs ~5.8", kernel.MeanR, user.MeanR)
	}
}

func TestMxPxShape(t *testing.T) {
	res, err := MeasureMxPx(30000, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section 5.1: both Mx and Px exceed 1 — MassTree trades space
	// for time.
	if res.Mx <= 1 {
		t.Fatalf("Mx = %v, want > 1", res.Mx)
	}
	if res.Px <= 1 {
		t.Fatalf("Px = %v, want > 1 (Bw-tree cost %v vs MassTree %v)",
			res.Px, res.BwCostPerOp, res.MassCostPerOp)
	}
	if res.BreakevenRate6GB <= 0 {
		t.Fatal("no breakeven computed")
	}
	if !strings.Contains(res.String(), "M_x") {
		t.Fatal("String missing M_x")
	}
}

func TestPageModelShape(t *testing.T) {
	res, err := MeasurePageModel(20000, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section 4.1: B-tree ≈ 69% block utilization; Bw-tree flushed
	// variable-size pages ≈ 100% of their content.
	if res.BTreeUtilization < 0.55 || res.BTreeUtilization > 0.85 {
		t.Fatalf("B-tree utilization = %v, want ≈ 0.69", res.BTreeUtilization)
	}
	if res.BwStorageUtilization < 0.8 {
		t.Fatalf("Bw-tree storage utilization = %v, want ≈ 1.0", res.BwStorageUtilization)
	}
	if res.BTreeAvgPageBytes < 1800 || res.BTreeAvgPageBytes > 3400 {
		t.Fatalf("B-tree P_s = %v, want ≈ 2700", res.BTreeAvgPageBytes)
	}
}

func TestWriteReductionShape(t *testing.T) {
	res, err := MeasureWriteReduction(5000, 5000, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Log-structuring must dramatically reduce write I/Os and also write
	// fewer bytes (variable pages vs fixed blocks).
	if res.WriteIOReduction < 2 {
		t.Fatalf("write I/O reduction = %vx, want large (btree %d vs bwtree %d)",
			res.WriteIOReduction, res.BTreeDeviceWrites, res.BwDeviceWrites)
	}
	if res.WriteByteReduction <= 1 {
		t.Fatalf("byte reduction = %v, want > 1", res.WriteByteReduction)
	}
}

func TestBlindUpdateShape(t *testing.T) {
	res, err := MeasureBlindUpdates(3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadIOsBlind != 0 {
		t.Fatalf("blind updates issued %d read I/Os, want 0", res.ReadIOsBlind)
	}
	if res.ReadIOsReadModify == 0 {
		t.Fatal("read-modify-write issued no reads; experiment broken")
	}
}

func TestRecordCacheShape(t *testing.T) {
	res, err := MeasureRecordCache(5000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// A hot/cold workload must get most reads from the TC's caches.
	if res.TCHitRatio < 0.5 {
		t.Fatalf("TC hit ratio = %v, want majority served at the TC", res.TCHitRatio)
	}
	if res.DCReads == 0 {
		t.Fatal("cold tail never reached the DC; workload broken")
	}
	if res.DeviceReads >= res.Reads {
		t.Fatalf("device reads %d >= logical reads %d", res.DeviceReads, res.Reads)
	}
}

func TestGCTradeoffShape(t *testing.T) {
	res, err := MeasureGCTradeoff(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayedPerRun <= res.EagerPerRun {
		t.Fatalf("delayed GC reclaimed %.0f B/run <= eager %.0f B/run; paper says delaying helps",
			res.DelayedPerRun, res.EagerPerRun)
	}
}

func TestEvictionPolicyShape(t *testing.T) {
	res, err := MeasureEvictionPolicies(20000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	var none, lru, breakeven PolicyOutcome
	for _, o := range res.Outcomes {
		switch o.Policy {
		case llama.PolicyNone:
			none = o
		case llama.PolicyLRU:
			lru = o
		case llama.PolicyBreakeven:
			breakeven = o
		}
	}
	// No eviction: zero misses, largest footprint.
	if none.MissFraction != 0 {
		t.Fatalf("PolicyNone miss fraction = %v", none.MissFraction)
	}
	if none.Evictions != 0 {
		t.Fatal("PolicyNone evicted")
	}
	// Both evicting policies shrink the footprint.
	if lru.FootprintMB >= none.FootprintMB || breakeven.FootprintMB >= none.FootprintMB {
		t.Fatalf("eviction did not shrink footprint: none=%v lru=%v be=%v",
			none.FootprintMB, lru.FootprintMB, breakeven.FootprintMB)
	}
	// The breakeven policy must keep the hot set resident: modest misses.
	if breakeven.MissFraction > 0.5 {
		t.Fatalf("breakeven policy miss fraction = %v", breakeven.MissFraction)
	}
	// The paper's point: at cold access rates, evicting cold pages lowers
	// total cost versus keeping everything in DRAM.
	if breakeven.EstCostPerSec >= none.EstCostPerSec {
		t.Fatalf("breakeven cost %v >= keep-everything cost %v",
			breakeven.EstCostPerSec, none.EstCostPerSec)
	}
}

func TestConsolidationAblationShape(t *testing.T) {
	res, err := MeasureConsolidationThreshold(5000, 10000, []int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Longer chains must make reads more expensive (more delta hops).
	if res.Points[2].MeanReadCost <= res.Points[0].MeanReadCost {
		t.Fatalf("read cost did not grow with threshold: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.MeanReadCost <= 0 || p.MeanWriteCost <= 0 {
			t.Fatalf("missing costs: %+v", p)
		}
	}
}

func TestDeviceSweepShape(t *testing.T) {
	res := MeasureDeviceSweep()
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	byName := map[string]DevicePoint{}
	for _, p := range res.Points {
		byName[p.Name] = p
	}
	// More IOPS per dollar shrinks T_i (Section 7.1.2).
	if byName["nextgen-ssd"].BreakevenSecs >= byName["samsung-ssd"].BreakevenSecs {
		t.Fatal("next-gen SSD should shrink the breakeven interval")
	}
	// HDDs have enormous breakeven intervals (Section 8.3: not useful for
	// high-performance stores).
	if byName["commodity-hdd"].BreakevenSecs < 100*byName["samsung-ssd"].BreakevenSecs {
		t.Fatal("HDD breakeven should be orders of magnitude longer")
	}
	// NVRAM's cheap accesses push the breakeven far left (Section 8.2).
	if byName["nvram"].BreakevenSecs >= byName["samsung-ssd"].BreakevenSecs {
		t.Fatal("NVRAM should shrink the breakeven interval")
	}
}

func TestCrossStoreShape(t *testing.T) {
	res, err := MeasureCrossStore(5000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 16 { // 4 mixes x 4 stores
		t.Fatalf("results = %d", len(res.Results))
	}
	byKey := map[string]StoreResult{}
	for _, s := range res.Results {
		byKey[s.Mix+"/"+s.Store] = s
	}
	// Read-only: the main-memory store is the cheapest per op (the paper's
	// concession: main-memory systems win on pure performance).
	ro := "readonly/"
	if !(byKey[ro+"masstree"].CostPerOp < byKey[ro+"bwtree"].CostPerOp) {
		t.Fatalf("masstree %v not cheaper than bwtree %v on read-only",
			byKey[ro+"masstree"].CostPerOp, byKey[ro+"bwtree"].CostPerOp)
	}
	// Main-memory store never touches the device.
	if byKey[ro+"masstree"].DeviceReads != 0 {
		t.Fatal("masstree issued device reads")
	}
	// The classic B-tree with a small pool pays SS operations even on a
	// zipfian read-only load; the Bw-tree (fully cached here) does not.
	if byKey[ro+"btree"].MissFraction == 0 {
		t.Fatal("btree never missed with a small pool")
	}
	if byKey[ro+"bwtree"].MissFraction != 0 {
		t.Fatal("fully cached bwtree recorded misses")
	}
	if res.String() == "" {
		t.Fatal("empty table")
	}
}

func TestLatencyDistributionShape(t *testing.T) {
	res, err := MeasureLatency(20000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Section 8.1's shape: MM ops sub-microsecond-ish, SS ops ~device
	// latency; P50 fast, P99 device-bound at a ~5% miss ratio.
	if res.MMLatencyUS <= 0 || res.MMLatencyUS > 10 {
		t.Fatalf("MM latency = %v µs, want small", res.MMLatencyUS)
	}
	if res.SSLatencyUS < 50 {
		t.Fatalf("SS latency = %v µs, want ~device latency (100 µs)", res.SSLatencyUS)
	}
	if res.P50US >= res.P99US {
		t.Fatalf("P50 %v >= P99 %v", res.P50US, res.P99US)
	}
	if res.P99US < 50 {
		t.Fatalf("P99 = %v µs, tail should be device-bound", res.P99US)
	}
	if res.MissFraction <= 0.01 || res.MissFraction > 0.2 {
		t.Fatalf("miss fraction = %v, workload broken", res.MissFraction)
	}
}

func TestSensitivityReport(t *testing.T) {
	res, err := MeasureSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elasticities) != 8 {
		t.Fatalf("got %d elasticities", len(res.Elasticities))
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}

func TestLSMAmplificationShape(t *testing.T) {
	res, err := MeasureLSMAmplification(4000, 8000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compactions == 0 {
		t.Fatal("no compactions; amplification unmeasured")
	}
	// Compaction rewrites data: WA must exceed 1. Leveled compaction keeps
	// it bounded (single digits at this scale).
	if res.WriteAmplification <= 1 {
		t.Fatalf("write amplification = %v, want > 1", res.WriteAmplification)
	}
	if res.WriteAmplification > 30 {
		t.Fatalf("write amplification = %v, implausibly high", res.WriteAmplification)
	}
	// Space amplification stays small: dead versions are compacted away.
	if res.SpaceAmplification <= 0 || res.SpaceAmplification > 5 {
		t.Fatalf("space amplification = %v", res.SpaceAmplification)
	}
}
