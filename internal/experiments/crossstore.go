package experiments

import (
	"fmt"
	"strings"

	"costperf/internal/btree"
	"costperf/internal/bwtree"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// StoreResult is one engine's measurement under one workload mix.
type StoreResult struct {
	Store        string
	Mix          string
	CostPerOp    float64 // mean execution cost units per operation
	MissFraction float64
	DeviceReads  int64
	DeviceWrites int64
	FootprintMB  float64
}

// CrossStoreResult is the cross-engine comparison table.
type CrossStoreResult struct {
	Keys    int
	Ops     int
	Results []StoreResult
}

// kvDriver is the uniform adapter the comparison drives.
type kvDriver struct {
	name      string
	get       func(k []byte) error
	put       func(k, v []byte) error
	blind     func(k, v []byte) error
	del       func(k []byte) error
	scan      func(start []byte, limit int) error
	footprint func() int64
}

func bwDriver(sess *sim.Session, dev ssd.Dev) (*kvDriver, error) {
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 18, SegmentBytes: 1 << 20})
	if err != nil {
		return nil, err
	}
	tr, err := bwtree.New(bwtree.Config{Store: st, Session: sess})
	if err != nil {
		return nil, err
	}
	return &kvDriver{
		name:  "bwtree",
		get:   func(k []byte) error { _, _, err := tr.Get(k); return err },
		put:   tr.Insert,
		blind: tr.BlindWrite,
		del:   tr.Delete,
		scan: func(s []byte, l int) error {
			return tr.Scan(s, l, func(_, _ []byte) bool { return true })
		},
		footprint: tr.FootprintBytes,
	}, nil
}

func mtDriver(sess *sim.Session) *kvDriver {
	tr := masstree.New(sess)
	return &kvDriver{
		name:  "masstree",
		get:   func(k []byte) error { tr.Get(k); return nil },
		put:   func(k, v []byte) error { tr.Put(k, v); return nil },
		blind: func(k, v []byte) error { tr.Put(k, v); return nil },
		del:   func(k []byte) error { tr.Delete(k); return nil },
		scan: func(s []byte, l int) error {
			tr.Scan(s, l, func(_, _ []byte) bool { return true })
			return nil
		},
		footprint: tr.FootprintBytes,
	}
}

func lsmDriver(sess *sim.Session, dev ssd.Dev) (*kvDriver, error) {
	tr, err := lsm.New(lsm.Config{Device: dev, Session: sess})
	if err != nil {
		return nil, err
	}
	return &kvDriver{
		name:  "lsm",
		get:   func(k []byte) error { _, _, err := tr.Get(k); return err },
		put:   tr.Put,
		blind: tr.Put,
		del:   tr.Delete,
		scan: func(s []byte, l int) error {
			return tr.Scan(s, l, func(_, _ []byte) bool { return true })
		},
		footprint: func() int64 { return int64(tr.MemtableBytes()) },
	}, nil
}

func btDriver(sess *sim.Session, dev ssd.Dev, pool int) (*kvDriver, error) {
	tr, err := btree.New(btree.Config{Device: dev, PoolPages: pool, Session: sess})
	if err != nil {
		return nil, err
	}
	return &kvDriver{
		name:  "btree",
		get:   func(k []byte) error { _, _, err := tr.Get(k); return err },
		put:   tr.Insert,
		blind: tr.Insert,
		del:   tr.Delete,
		scan: func(s []byte, l int) error {
			return tr.Scan(s, l, func(_, _ []byte) bool { return true })
		},
		footprint: func() int64 { return int64(pool) * btree.PageSize },
	}, nil
}

// MeasureCrossStore runs each engine through the named mixes with a
// zipfian chooser and reports per-op costs — the "who wins" table behind
// the paper's introduction (main-memory stores fastest, caching stores
// close behind with far smaller footprints, the classic B-tree far
// behind once the pool misses).
func MeasureCrossStore(keys, ops int) (*CrossStoreResult, error) {
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"readonly", workload.ReadOnly},
		{"readmostly", workload.ReadMostly},
		{"updateheavy", workload.UpdateHeavy},
		{"blindheavy", workload.BlindWriteHeavy},
	}
	res := &CrossStoreResult{Keys: keys, Ops: ops}
	for _, m := range mixes {
		for _, engine := range []string{"masstree", "bwtree", "lsm", "btree"} {
			sess := sim.NewSession(sim.DefaultCosts())
			dev := ssd.New(ssd.SamsungSSD)
			var d *kvDriver
			var err error
			switch engine {
			case "masstree":
				d = mtDriver(sess)
			case "bwtree":
				d, err = bwDriver(sess, dev)
			case "lsm":
				d, err = lsmDriver(sess, dev)
			case "btree":
				// A pool sized at roughly half the data forces real cache
				// behaviour.
				d, err = btDriver(sess, dev, keys/64)
			}
			if err != nil {
				return nil, err
			}
			for i := 0; i < keys; i++ {
				if err := d.put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 100)); err != nil {
					return nil, err
				}
			}
			sess.Tracker().Reset()
			dev.Stats().Reset()
			gen, err := workload.NewGenerator(workload.GeneratorConfig{
				Keys: uint64(keys), ValueSize: 100, Mix: m.mix,
				Chooser: workload.NewZipfian(7, 0.99), Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			for i := 0; i < ops; i++ {
				op := gen.Next()
				switch op.Kind {
				case workload.OpRead:
					err = d.get(op.Key)
				case workload.OpUpdate, workload.OpInsert:
					err = d.put(op.Key, op.Value)
				case workload.OpBlindWrite:
					err = d.blind(op.Key, op.Value)
				case workload.OpScan:
					err = d.scan(op.Key, op.ScanLen)
				case workload.OpDelete:
					err = d.del(op.Key)
				}
				if err != nil {
					return nil, err
				}
			}
			tk := sess.Tracker()
			total := tk.TotalOps()
			cost := 0.0
			if total > 0 {
				cost = float64(tk.TotalCost()) / float64(total)
			}
			res.Results = append(res.Results, StoreResult{
				Store:        engine,
				Mix:          m.name,
				CostPerOp:    cost,
				MissFraction: tk.MissFraction(),
				DeviceReads:  dev.Stats().Reads.Value(),
				DeviceWrites: dev.Stats().Writes.Value(),
				FootprintMB:  float64(d.footprint()) / (1 << 20),
			})
		}
	}
	return res, nil
}

// String renders the comparison table.
func (r *CrossStoreResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-store comparison (%d keys, %d ops, zipfian 0.99)\n", r.Keys, r.Ops)
	fmt.Fprintf(&b, "%12s %10s %12s %8s %10s %10s %12s\n",
		"mix", "store", "cost/op", "missF", "dev reads", "dev writes", "footprintMB")
	for _, s := range r.Results {
		fmt.Fprintf(&b, "%12s %10s %12.1f %8.4f %10d %10d %12.2f\n",
			s.Mix, s.Store, s.CostPerOp, s.MissFraction, s.DeviceReads, s.DeviceWrites, s.FootprintMB)
	}
	return b.String()
}
