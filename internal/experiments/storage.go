package experiments

import (
	"fmt"
	"math/rand"

	"costperf/internal/btree"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// ---------------------------------------------------------------------------
// D4: page-size and utilization model (paper Section 4.1): classic B-tree
// pages average just under 70% utilization of 4K blocks (P_s ≈ 2.7 KB);
// Bw-tree variable-size pages are ~100% utilized when flushed.

// PageModelResult is the D4 experiment output.
type PageModelResult struct {
	Keys                  int
	BTreeUtilization      float64 // content / 4K block
	BTreeAvgPageBytes     float64 // the paper's P_s
	BwStorageUtilization  float64 // content bytes / bytes written per flush
	BwAvgPageContentBytes float64
}

// MeasurePageModel fills both trees with random-order inserts and
// measures fill factors and flushed-page sizes.
func MeasurePageModel(keys int, valueSize int) (*PageModelResult, error) {
	// Classic B-tree.
	bdev := ssd.New(ssd.SamsungSSD)
	bt, err := btree.New(btree.Config{Device: bdev, PoolPages: 1 << 16})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < keys; i++ {
		id := uint64(rng.Int63())
		if err := bt.Insert(workload.Key(id), workload.ValueFor(id, valueSize)); err != nil {
			return nil, err
		}
	}
	util, err := bt.Utilization()
	if err != nil {
		return nil, err
	}
	ps, err := bt.AveragePageBytes()
	if err != nil {
		return nil, err
	}

	// Bw-tree over the log store: flushed bytes vs content bytes.
	s, err := newStack(ssd.UserLevelPath)
	if err != nil {
		return nil, err
	}
	rng = rand.New(rand.NewSource(5))
	for i := 0; i < keys; i++ {
		id := uint64(rng.Int63())
		if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id, valueSize)); err != nil {
			return nil, err
		}
	}
	// Consolidate + flush everything; compare content to written bytes.
	written0 := s.st.Stats().BytesAppended.Value()
	var content int64
	for _, pid := range s.tree.Pages() {
		if err := s.tree.FlushPage(pid); err != nil {
			return nil, err
		}
	}
	content = int64(s.tree.AveragePageBytes() * float64(len(s.tree.Pages())))
	written := s.st.Stats().BytesAppended.Value() - written0

	res := &PageModelResult{
		Keys:                  keys,
		BTreeUtilization:      util,
		BTreeAvgPageBytes:     ps,
		BwAvgPageContentBytes: s.tree.AveragePageBytes(),
	}
	if written > 0 {
		res.BwStorageUtilization = float64(content) / float64(written)
	}
	return res, nil
}

// String renders the D4 result.
func (r *PageModelResult) String() string {
	return fmt.Sprintf(`D4: page-size model (%d keys)
  classic B-tree: utilization %.3f of 4K blocks (paper ≈ ln2 = 0.69), avg content %.0f B (paper P_s ≈ 2700)
  Bw-tree:        flushed-storage utilization %.3f (paper ≈ 1.0, variable-size pages), avg page content %.0f B
`, r.Keys, r.BTreeUtilization, r.BTreeAvgPageBytes, r.BwStorageUtilization, r.BwAvgPageContentBytes)
}

// ---------------------------------------------------------------------------
// D5: log-structuring shrinks write I/O (paper Section 6.1): large write
// buffers turn many page writes into few device writes, and variable-size
// pages write ~30% fewer bytes than fixed 4K blocks.

// WriteReductionResult is the D5 experiment output.
type WriteReductionResult struct {
	Updates            int
	BTreeDeviceWrites  int64
	BTreeBytesWritten  int64
	BwDeviceWrites     int64
	BwBytesWritten     int64
	WriteIOReduction   float64 // btree writes / bwtree writes
	WriteByteReduction float64 // btree bytes / bwtree bytes
}

// MeasureWriteReduction runs an identical update-heavy workload against a
// classic B-tree (fixed blocks, per-page write-back) and the Bw-tree over
// the log store (batched variable-size flushes).
func MeasureWriteReduction(keys, updates, valueSize int) (*WriteReductionResult, error) {
	// Classic B-tree with a pool small enough to force write-backs.
	bdev := ssd.New(ssd.SamsungSSD)
	bt, err := btree.New(btree.Config{Device: bdev, PoolPages: 64})
	if err != nil {
		return nil, err
	}
	for i := 0; i < keys; i++ {
		if err := bt.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), valueSize)); err != nil {
			return nil, err
		}
	}
	if err := bt.FlushAll(); err != nil {
		return nil, err
	}
	bw0, bb0 := bdev.Stats().Writes.Value(), bdev.Stats().BytesWritten.Value()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < updates; i++ {
		id := uint64(rng.Int63n(int64(keys)))
		if err := bt.Insert(workload.Key(id), workload.ValueFor(id+uint64(i), valueSize)); err != nil {
			return nil, err
		}
	}
	if err := bt.FlushAll(); err != nil {
		return nil, err
	}
	btWrites := bdev.Stats().Writes.Value() - bw0
	btBytes := bdev.Stats().BytesWritten.Value() - bb0

	// Bw-tree over log store.
	s, err := newStack(ssd.UserLevelPath)
	if err != nil {
		return nil, err
	}
	if err := s.load(uint64(keys), valueSize); err != nil {
		return nil, err
	}
	dw0, db0 := s.dev.Stats().Writes.Value(), s.dev.Stats().BytesWritten.Value()
	rng = rand.New(rand.NewSource(9))
	for i := 0; i < updates; i++ {
		id := uint64(rng.Int63n(int64(keys)))
		if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id+uint64(i), valueSize)); err != nil {
			return nil, err
		}
	}
	for _, pid := range s.tree.Pages() {
		if err := s.tree.FlushPage(pid); err != nil {
			return nil, err
		}
	}
	if err := s.st.Flush(nil); err != nil {
		return nil, err
	}
	bwWrites := s.dev.Stats().Writes.Value() - dw0
	bwBytes := s.dev.Stats().BytesWritten.Value() - db0

	res := &WriteReductionResult{
		Updates:           updates,
		BTreeDeviceWrites: btWrites, BTreeBytesWritten: btBytes,
		BwDeviceWrites: bwWrites, BwBytesWritten: bwBytes,
	}
	if bwWrites > 0 {
		res.WriteIOReduction = float64(btWrites) / float64(bwWrites)
	}
	if bwBytes > 0 {
		res.WriteByteReduction = float64(btBytes) / float64(bwBytes)
	}
	return res, nil
}

// String renders the D5 result.
func (r *WriteReductionResult) String() string {
	return fmt.Sprintf(`D5: write I/O reduction via log-structuring (%d updates)
  classic B-tree: %d device writes, %d bytes
  Bw-tree/LLAMA:  %d device writes, %d bytes
  reduction: %.1fx fewer write I/Os, %.2fx fewer bytes (paper: large buffers + ~30%% from variable pages)
`, r.Updates, r.BTreeDeviceWrites, r.BTreeBytesWritten, r.BwDeviceWrites, r.BwBytesWritten,
		r.WriteIOReduction, r.WriteByteReduction)
}

// ---------------------------------------------------------------------------
// D6: blind updates avoid read I/O (paper Section 6.2).

// BlindUpdateResult is the D6 experiment output.
type BlindUpdateResult struct {
	Writes            int
	ReadIOsBlind      int64
	ReadIOsReadModify int64
}

// MeasureBlindUpdates evicts the whole tree and compares device read I/Os
// for blind writes versus read-modify-writes over the same keys.
func MeasureBlindUpdates(keys, writes int) (*BlindUpdateResult, error) {
	s, err := newStack(ssd.UserLevelPath)
	if err != nil {
		return nil, err
	}
	if err := s.load(uint64(keys), 64); err != nil {
		return nil, err
	}
	if err := s.evictAll(false); err != nil {
		return nil, err
	}
	r0 := s.dev.Stats().Reads.Value()
	for i := 0; i < writes; i++ {
		id := uint64(i) % uint64(keys)
		if err := s.tree.BlindWrite(workload.Key(id), workload.ValueFor(id+1, 64)); err != nil {
			return nil, err
		}
	}
	blindReads := s.dev.Stats().Reads.Value() - r0

	if err := s.evictAll(false); err != nil {
		return nil, err
	}
	r1 := s.dev.Stats().Reads.Value()
	for i := 0; i < writes; i++ {
		id := uint64(i) % uint64(keys)
		// Read-modify-write: the traditional path.
		if _, _, err := s.tree.Get(workload.Key(id)); err != nil {
			return nil, err
		}
		if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id+2, 64)); err != nil {
			return nil, err
		}
	}
	rmwReads := s.dev.Stats().Reads.Value() - r1

	return &BlindUpdateResult{Writes: writes, ReadIOsBlind: blindReads, ReadIOsReadModify: rmwReads}, nil
}

// String renders the D6 result.
func (r *BlindUpdateResult) String() string {
	return fmt.Sprintf(`D6: blind updates avoid read I/O (%d writes to evicted pages)
  blind updates:      %d read I/Os (paper: 0 — no base page needed)
  read-modify-write:  %d read I/Os
`, r.Writes, r.ReadIOsBlind, r.ReadIOsReadModify)
}

// ---------------------------------------------------------------------------
// D8: the log-GC trade-off (paper Section 6.1): delaying GC increases
// reclaimed bytes per collected segment.

// GCTradeoffResult is the D8 experiment output.
type GCTradeoffResult struct {
	EagerRuns        int64
	EagerReclaimed   int64
	EagerRelocated   int64
	DelayedRuns      int64
	DelayedReclaimed int64
	DelayedRelocated int64
	EagerPerRun      float64
	DelayedPerRun    float64
}

// MeasureGCTradeoff runs the same update workload twice: once collecting
// after every flush wave (eager) and once collecting only at the end
// (delayed), comparing reclaimed bytes per GC run.
func MeasureGCTradeoff(keys, rounds int) (*GCTradeoffResult, error) {
	run := func(eager bool) (*stack, error) {
		s, err := newStack(ssd.UserLevelPath)
		if err != nil {
			return nil, err
		}
		if err := s.load(uint64(keys), 200); err != nil {
			return nil, err
		}
		for round := 0; round < rounds; round++ {
			for i := 0; i < keys; i += 3 {
				id := uint64(i)
				if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id+uint64(round), 200)); err != nil {
					return nil, err
				}
			}
			for _, pid := range s.tree.Pages() {
				if err := s.tree.FlushPage(pid); err != nil {
					return nil, err
				}
			}
			if err := s.st.Flush(nil); err != nil {
				return nil, err
			}
			if eager {
				if _, err := s.st.CollectSegment(s.tree.RelocateForGC, nil); err != nil {
					return nil, err
				}
			}
		}
		if !eager {
			for i := 0; i < rounds; i++ {
				if _, err := s.st.CollectSegment(s.tree.RelocateForGC, nil); err != nil {
					return nil, err
				}
			}
		}
		return s, nil
	}
	eager, err := run(true)
	if err != nil {
		return nil, err
	}
	delayed, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &GCTradeoffResult{
		EagerRuns:        eager.st.Stats().GCRuns.Value(),
		EagerReclaimed:   eager.st.Stats().GCReclaimed.Value(),
		EagerRelocated:   eager.st.Stats().GCRelocated.Value(),
		DelayedRuns:      delayed.st.Stats().GCRuns.Value(),
		DelayedReclaimed: delayed.st.Stats().GCReclaimed.Value(),
		DelayedRelocated: delayed.st.Stats().GCRelocated.Value(),
	}
	if res.EagerRuns > 0 {
		res.EagerPerRun = float64(res.EagerReclaimed) / float64(res.EagerRuns)
	}
	if res.DelayedRuns > 0 {
		res.DelayedPerRun = float64(res.DelayedReclaimed) / float64(res.DelayedRuns)
	}
	return res, nil
}

// String renders the D8 result.
func (r *GCTradeoffResult) String() string {
	return fmt.Sprintf(`D8: log GC trade-off (Section 6.1)
  eager:   %d runs, %d B reclaimed (%.0f B/run), %d B relocated
  delayed: %d runs, %d B reclaimed (%.0f B/run), %d B relocated
  (paper: delaying GC increases reclaimed space per segment)
`, r.EagerRuns, r.EagerReclaimed, r.EagerPerRun, r.EagerRelocated,
		r.DelayedRuns, r.DelayedReclaimed, r.DelayedPerRun, r.DelayedRelocated)
}
