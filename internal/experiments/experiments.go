// Package experiments implements the measured experiments of the
// reproduction (DESIGN.md D1–D8 and ablations A1–A3): each builds the
// relevant stack — Bw-tree over LLAMA over a simulated SSD, MassTree,
// classic B-tree, LSM, transaction component — drives a workload, and
// reports the quantities the paper derives from its testbed (R, P0/PF,
// M_x/P_x, page utilization, write/read I/O reductions).
//
// Experiments are deterministic: randomness is seeded and execution cost
// comes from the sim package's cost accounting, not wall clocks.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/llama/logstore"
	"costperf/internal/masstree"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// stack bundles a Bw-tree data-caching stack for experiments.
type stack struct {
	sess *sim.Session
	dev  ssd.Dev
	st   *logstore.Store
	tree *bwtree.Tree
}

func newStack(path ssd.IOPath) (*stack, error) {
	sess := sim.NewSession(sim.DefaultCosts())
	cfg := ssd.SamsungSSD
	cfg.Path = path
	dev := ssd.New(cfg)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 18, SegmentBytes: 1 << 20})
	if err != nil {
		return nil, err
	}
	tree, err := bwtree.New(bwtree.Config{Store: st, Session: sess})
	if err != nil {
		return nil, err
	}
	return &stack{sess: sess, dev: dev, st: st, tree: tree}, nil
}

func (s *stack) load(keys uint64, valueSize int) error {
	for i := uint64(0); i < keys; i++ {
		if err := s.tree.Insert(workload.Key(i), workload.ValueFor(i, valueSize)); err != nil {
			return err
		}
	}
	// Settle: flush and consolidate so steady-state pages are measured.
	for _, pid := range s.tree.Pages() {
		if err := s.tree.FlushPage(pid); err != nil {
			return err
		}
	}
	return s.st.Flush(nil)
}

func (s *stack) evictAll(retainDeltas bool) error {
	for _, pid := range s.tree.Pages() {
		if err := s.tree.EvictPage(pid, retainDeltas); err != nil {
			return err
		}
	}
	return s.st.Flush(nil)
}

// ---------------------------------------------------------------------------
// D1: derive R from mixed MM/SS workloads (paper Section 2.2, Figure 1).

// RPoint is one measured mixed-workload sample.
type RPoint struct {
	TargetF   float64 // requested SS fraction
	MeasuredF float64 // observed miss fraction
	RelPerf   float64 // PF / P0
	R         float64 // Equation 3 applied to the measurement
}

// RResult is the D1 experiment output.
type RResult struct {
	P0     float64  // ops per cost-unit, all-MM
	Points []RPoint // one per target miss fraction
	MeanR  float64
}

// DeriveR loads a keyspace, measures P0 on warm reads, then sweeps the SS
// fraction by directing a controlled share of reads at evicted pages.
func DeriveR(keys uint64, fractions []float64, path ssd.IOPath) (*RResult, error) {
	s, err := newStack(path)
	if err != nil {
		return nil, err
	}
	if err := s.load(keys, 64); err != nil {
		return nil, err
	}
	// Warm everything, then measure P0.
	for i := uint64(0); i < keys; i++ {
		if _, _, err := s.tree.Get(workload.Key(i)); err != nil {
			return nil, err
		}
	}
	s.sess.Tracker().Reset()
	rng := rand.New(rand.NewSource(42))
	const warmOps = 4000
	for i := 0; i < warmOps; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(rng.Int63n(int64(keys) / 2)))); err != nil {
			return nil, err
		}
	}
	p0 := s.sess.Tracker().Throughput()
	res := &RResult{P0: p0}

	// Stride cold reads so each one hits a distinct evicted page; the
	// stride comfortably exceeds the keys-per-page of consolidated leaves.
	const stride = 64
	coldBase := keys / 2
	coldPool := (keys - coldBase) / stride

	for _, f := range fractions {
		if err := s.evictAll(false); err != nil {
			return nil, err
		}
		// Re-warm the warm half completely so its reads are pure MM.
		for i := uint64(0); i < keys/2; i++ {
			if _, _, err := s.tree.Get(workload.Key(i)); err != nil {
				return nil, err
			}
		}
		// Size the run so cold reads never wrap back onto warmed pages.
		ops := 3000
		if f > 0 && float64(coldPool)/f < float64(ops) {
			ops = int(float64(coldPool) / f)
		}
		s.sess.Tracker().Reset()
		rng := rand.New(rand.NewSource(7))
		coldCursor := uint64(0)
		for i := 0; i < ops; i++ {
			if rng.Float64() < f && coldCursor < coldPool {
				// Cold read: a distinct evicted page each time.
				k := coldBase + coldCursor*stride
				coldCursor++
				if _, _, err := s.tree.Get(workload.Key(k)); err != nil {
					return nil, err
				}
			} else {
				k := uint64(rng.Int63n(int64(keys) / 2))
				if _, _, err := s.tree.Get(workload.Key(k)); err != nil {
					return nil, err
				}
			}
		}
		tk := s.sess.Tracker()
		mf := tk.MissFraction()
		pf := tk.Throughput()
		pt := RPoint{TargetF: f, MeasuredF: mf, RelPerf: pf / p0}
		if r, err := core.DeriveR(p0, pf, mf); err == nil {
			pt.R = r
		}
		res.Points = append(res.Points, pt)
	}
	var sum float64
	n := 0
	for _, p := range res.Points {
		if p.R > 0 {
			sum += p.R
			n++
		}
	}
	if n > 0 {
		res.MeanR = sum / float64(n)
	}
	return res, nil
}

// String renders the result as the paper's Figure 1 measured points.
func (r *RResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "D1: derive R (Equation 3) — mean R = %.2f\n", r.MeanR)
	fmt.Fprintf(&b, "%8s %10s %10s %8s\n", "targetF", "measuredF", "PF/P0", "R")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.3f %10.4f %10.4f %8.2f\n", p.TargetF, p.MeasuredF, p.RelPerf, p.R)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// D3: measure MassTree's memory expansion M_x and performance gain P_x
// against the fully cached Bw-tree (paper Section 5.1).

// MxPxResult is the D3 experiment output.
type MxPxResult struct {
	Keys             uint64
	BwFootprint      int64
	MassFootprint    int64
	Mx               float64
	BwCostPerOp      float64
	MassCostPerOp    float64
	Px               float64
	BreakevenRate6GB float64 // Equation 7 evaluated with measured Mx/Px at 6.1 GB
}

// MeasureMxPx loads identical data into both stores and measures footprint
// and read-only execution cost.
func MeasureMxPx(keys uint64, valueSize int) (*MxPxResult, error) {
	sessBw := sim.NewSession(sim.DefaultCosts())
	bw, err := bwtree.New(bwtree.Config{Session: sessBw}) // main-memory mode
	if err != nil {
		return nil, err
	}
	sessMt := sim.NewSession(sim.DefaultCosts())
	mt := masstree.New(sessMt)

	for i := uint64(0); i < keys; i++ {
		k, v := workload.Key(i), workload.ValueFor(i, valueSize)
		if err := bw.Insert(k, v); err != nil {
			return nil, err
		}
		mt.Put(k, v)
	}
	// Read-only measurement (paper: 4-core read-only point experiment).
	sessBw.Tracker().Reset()
	sessMt.Tracker().Reset()
	rng := rand.New(rand.NewSource(11))
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := workload.Key(uint64(rng.Int63n(int64(keys))))
		if _, _, err := bw.Get(k); err != nil {
			return nil, err
		}
		mt.Get(k)
	}
	res := &MxPxResult{
		Keys:          keys,
		BwFootprint:   bw.FootprintBytes(),
		MassFootprint: mt.FootprintBytes(),
		BwCostPerOp:   float64(sessBw.Tracker().MeanCost(sim.OpMM)),
		MassCostPerOp: float64(sessMt.Tracker().MeanCost(sim.OpMM)),
	}
	res.Mx = float64(res.MassFootprint) / float64(res.BwFootprint)
	res.Px = res.BwCostPerOp / res.MassCostPerOp
	if res.Mx > 1 && res.Px > 1 {
		cmp := core.MainMemoryComparison{Costs: core.PaperCosts(), Mx: res.Mx, Px: res.Px}
		res.BreakevenRate6GB = cmp.BreakevenRate(6.1e9)
	}
	return res, nil
}

// String renders the D3 result.
func (r *MxPxResult) String() string {
	return fmt.Sprintf(`D3: MassTree vs Bw-tree (read-only, %d keys)
  Bw-tree footprint   %d B, cost/op %.1f
  MassTree footprint  %d B, cost/op %.1f
  M_x = %.2f (paper ≈ 2.1)    P_x = %.2f (paper ≈ 2.6)
  Equation 7 breakeven at 6.1 GB: %.3g ops/s (paper ≈ 0.73e6)
`, r.Keys, r.BwFootprint, r.BwCostPerOp, r.MassFootprint, r.MassCostPerOp,
		r.Mx, r.Px, r.BreakevenRate6GB)
}
