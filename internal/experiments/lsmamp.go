package experiments

import (
	"fmt"

	"costperf/internal/lsm"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// ---------------------------------------------------------------------------
// LSM amplification (paper Section 6.1 and its RocksDB space-amplification
// reference [Dong et al., CIDR'17]): log-structured merge stores trade
// write amplification (compaction rewrites data) for high storage
// utilization and large writes. This experiment measures both.

// LSMAmplificationResult reports the trade-off.
type LSMAmplificationResult struct {
	Keys               int
	Updates            int
	UserBytes          int64   // bytes the workload logically wrote
	DeviceBytesWritten int64   // bytes that reached the device
	WriteAmplification float64 // device/user
	LiveBytes          int64   // bytes of live records
	DeviceFootprint    int64   // bytes held by live SSTables
	SpaceAmplification float64 // footprint/live
	Compactions        int64
}

// MeasureLSMAmplification loads a keyspace and applies repeated updates,
// then measures write and space amplification.
func MeasureLSMAmplification(keys, updates, valueSize int) (*LSMAmplificationResult, error) {
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := lsm.New(lsm.Config{
		Device:         dev,
		MemtableBytes:  32 << 10,
		L0Tables:       4,
		LevelBytesBase: 256 << 10,
	})
	if err != nil {
		return nil, err
	}
	var userBytes int64
	write := func(id uint64, salt uint64) error {
		k := workload.Key(id)
		v := workload.ValueFor(id+salt, valueSize)
		userBytes += int64(len(k) + len(v))
		return tr.Put(k, v)
	}
	for i := 0; i < keys; i++ {
		if err := write(uint64(i), 0); err != nil {
			return nil, err
		}
	}
	ch := workload.NewZipfian(11, 0.9)
	for i := 0; i < updates; i++ {
		if err := write(ch.Next(uint64(keys)), uint64(i+1)); err != nil {
			return nil, err
		}
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	live := int64(keys * (8 + valueSize))
	res := &LSMAmplificationResult{
		Keys:               keys,
		Updates:            updates,
		UserBytes:          userBytes,
		DeviceBytesWritten: dev.Stats().BytesWritten.Value(),
		LiveBytes:          live,
		DeviceFootprint:    tr.DiskBytes(),
		Compactions:        tr.Stats().Compactions.Value(),
	}
	if userBytes > 0 {
		res.WriteAmplification = float64(res.DeviceBytesWritten) / float64(userBytes)
	}
	if live > 0 {
		res.SpaceAmplification = float64(res.DeviceFootprint) / float64(live)
	}
	return res, nil
}

// String renders the result.
func (r *LSMAmplificationResult) String() string {
	return fmt.Sprintf(`LSM amplification (Section 6.1 / RocksDB space-amp reference)
  %d keys + %d zipfian updates: %d user bytes
  device wrote %d bytes -> write amplification %.2fx (%d compactions)
  live data %d bytes on a %d-byte footprint -> space amplification %.2fx
  (the LSM trade: compaction rewrites cost writes but keep on-device
   utilization high and every write large)
`, r.Keys, r.Updates, r.UserBytes, r.DeviceBytesWritten, r.WriteAmplification,
		r.Compactions, r.LiveBytes, r.DeviceFootprint, r.SpaceAmplification)
}
