package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"costperf/internal/core"
	"costperf/internal/metrics"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// ---------------------------------------------------------------------------
// D9 (Section 8.1): per-operation latency distribution of a mixed
// workload. MM operations complete in CPU time; SS operations add a
// device access — so P50 stays in the sub-microsecond range while the
// tail jumps to device latency once the miss ratio clears the quantile.

// LatencyResult is the D9 experiment output.
type LatencyResult struct {
	MissFraction float64
	MMLatencyUS  float64 // measured mean MM op latency (µs)
	SSLatencyUS  float64 // measured mean SS op latency (µs)
	P50US        float64
	P95US        float64
	P99US        float64
	ModelP50US   float64 // two-point model prediction
	ModelP99US   float64
}

// MeasureLatency runs a hot/cold workload with a cold tail and converts
// each operation's measured execution cost into wall-clock latency:
// cost-units scaled so the mean MM operation takes 1/ROPS seconds, plus
// the device latency for operations that performed I/O.
func MeasureLatency(keys, ops int) (*LatencyResult, error) {
	s, err := newStack(ssd.UserLevelPath)
	if err != nil {
		return nil, err
	}
	if err := s.load(uint64(keys), 64); err != nil {
		return nil, err
	}
	// Evict the cold 90%: the hot 10% stays resident.
	costs := core.PaperCosts()
	// Warm the hot set after evicting everything.
	if err := s.evictAll(false); err != nil {
		return nil, err
	}
	for i := 0; i < keys/10; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(i))); err != nil {
			return nil, err
		}
	}

	// Calibrate: measure mean MM cost so cost-units map to 1/ROPS.
	s.sess.Tracker().Reset()
	for i := 0; i < 500; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(i % (keys / 10)))); err != nil {
			return nil, err
		}
	}
	mmUnit := float64(s.sess.Tracker().MeanCost(sim.OpMM))
	if mmUnit <= 0 {
		return nil, fmt.Errorf("experiments: calibration failed")
	}
	unitSeconds := (1 / costs.ROPS) / mmUnit
	devLatency := s.dev.Latency()

	var hist metrics.Histogram
	var mmSum, ssSum float64
	var mmN, ssN int64
	rng := rand.New(rand.NewSource(5))
	tk := s.sess.Tracker()
	tk.Reset()
	prevCost := sim.Cost(0)
	prevSS := int64(0)
	coldCursor := 0
	for i := 0; i < ops; i++ {
		var k []byte
		if rng.Float64() < 0.05 {
			// A cold read: stride through distinct evicted pages.
			k = workload.Key(uint64(keys/10 + (coldCursor*64)%(keys-keys/10)))
			coldCursor++
		} else {
			k = workload.Key(uint64(rng.Intn(keys / 10)))
		}
		if _, _, err := s.tree.Get(k); err != nil {
			return nil, err
		}
		cost := tk.TotalCost()
		ssOps := tk.Ops(sim.OpSS)
		opCost := float64(cost - prevCost)
		wasSS := ssOps > prevSS
		prevCost, prevSS = cost, ssOps
		lat := opCost * unitSeconds
		if wasSS {
			lat += devLatency
			ssSum += lat
			ssN++
		} else {
			mmSum += lat
			mmN++
		}
		hist.Observe(lat * 1e6) // µs
	}
	f := tk.MissFraction()
	model := core.LatencyModel{Costs: costs, DeviceLatency: devLatency}
	res := &LatencyResult{
		MissFraction: f,
		P50US:        hist.Quantile(0.50),
		P95US:        hist.Quantile(0.95),
		P99US:        hist.Quantile(0.99),
		ModelP50US:   model.TailLatency(f, 0.50) * 1e6,
		ModelP99US:   model.TailLatency(f, 0.99) * 1e6,
	}
	if mmN > 0 {
		res.MMLatencyUS = mmSum / float64(mmN) * 1e6
	}
	if ssN > 0 {
		res.SSLatencyUS = ssSum / float64(ssN) * 1e6
	}
	return res, nil
}

// String renders the D9 result.
func (r *LatencyResult) String() string {
	return fmt.Sprintf(`D9: operation latency distribution (Section 8.1)
  miss fraction %.4f
  measured: MM mean %.2f µs, SS mean %.2f µs
  quantiles: P50 %.2f µs, P95 %.2f µs, P99 %.2f µs
  two-point model: P50 %.2f µs, P99 %.2f µs
  (paper: "latencies in the 10's vs 100's of microseconds" — MM ops stay
   sub-microsecond, the tail pays the device once misses clear the quantile)
`, r.MissFraction, r.MMLatencyUS, r.SSLatencyUS,
		r.P50US, r.P95US, r.P99US, r.ModelP50US, r.ModelP99US)
}

// ---------------------------------------------------------------------------
// Sensitivity report: elasticities of the five-minute rule.

// SensitivityResult wraps the elasticity table for the harness.
type SensitivityResult struct {
	Elasticities map[string]float64
}

// MeasureSensitivity computes d(ln T_i)/d(ln p) for every model parameter.
func MeasureSensitivity() (*SensitivityResult, error) {
	e, err := core.PaperCosts().BreakevenSensitivities()
	if err != nil {
		return nil, err
	}
	return &SensitivityResult{Elasticities: e}, nil
}

// String renders the sensitivity table.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("Sensitivity: elasticity of the five-minute rule T_i (Equation 6)\n")
	fmt.Fprintf(&b, "%12s %12s   %s\n", "parameter", "d lnTi/d lnp", "meaning")
	notes := map[string]string{
		core.ParamDRAM:      "cheaper DRAM -> cache longer",
		core.ParamFlash:     "absent from Eq. 6",
		core.ParamProcessor: "dearer CPU -> I/O path dearer -> cache longer",
		core.ParamIOPSCost:  "dearer IOPS -> cache longer",
		core.ParamROPS:      "faster CPU -> evict sooner",
		core.ParamIOPS:      "more IOPS -> evict sooner (Section 7.1.2)",
		core.ParamPageSize:  "bigger pages -> evict sooner",
		core.ParamR:         "longer I/O path -> cache longer (Section 7.1.1)",
	}
	for _, p := range core.AllParams() {
		fmt.Fprintf(&b, "%12s %12.3f   %s\n", p, r.Elasticities[p], notes[p])
	}
	return b.String()
}
