package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/llama"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/tc"
	"costperf/internal/workload"
)

// ---------------------------------------------------------------------------
// D7: TC record caching (paper Section 6.3, Figure 6): hits in the MVCC
// version store or the read cache avoid both the I/O and the data
// component visit.

// RecordCacheResult is the D7 experiment output.
type RecordCacheResult struct {
	Reads            int64
	VersionStoreHits int64
	ReadCacheHits    int64
	DCReads          int64
	DeviceReads      int64
	TCHitRatio       float64
}

// MeasureRecordCache runs a hot/cold transactional workload over the full
// Deuteronomy stack with all pages evicted, so every DC read costs an I/O.
func MeasureRecordCache(keys, txs int) (*RecordCacheResult, error) {
	s, err := newStack(ssd.UserLevelPath)
	if err != nil {
		return nil, err
	}
	if err := s.load(uint64(keys), 64); err != nil {
		return nil, err
	}
	logDev := ssd.New(ssd.SamsungSSD)
	c, err := tc.New(tc.Config{DC: s.tree, LogDevice: logDev, Session: s.sess})
	if err != nil {
		return nil, err
	}
	if err := s.evictAll(false); err != nil {
		return nil, err
	}
	hot := workload.NewHotCold(3, 0.1, 0.9)
	rng := rand.New(rand.NewSource(3))
	r0 := s.dev.Stats().Reads.Value()
	for i := 0; i < txs; i++ {
		tx, err := c.Begin()
		if err != nil {
			return nil, err
		}
		for j := 0; j < 4; j++ {
			id := hot.Next(uint64(keys))
			if _, _, err := tx.Read(workload.Key(id)); err != nil {
				return nil, err
			}
		}
		if rng.Float64() < 0.25 {
			id := hot.Next(uint64(keys))
			if err := tx.Write(workload.Key(id), workload.ValueFor(id, 64)); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil && err != tc.ErrConflict {
			return nil, err
		}
	}
	st := c.Stats()
	total := st.VersionStoreHits.Value() + st.ReadCacheHits.Value() + st.DCReads.Value()
	res := &RecordCacheResult{
		Reads:            total,
		VersionStoreHits: st.VersionStoreHits.Value(),
		ReadCacheHits:    st.ReadCacheHits.Value(),
		DCReads:          st.DCReads.Value(),
		DeviceReads:      s.dev.Stats().Reads.Value() - r0,
	}
	if total > 0 {
		res.TCHitRatio = float64(res.VersionStoreHits+res.ReadCacheHits) / float64(total)
	}
	return res, nil
}

// String renders the D7 result.
func (r *RecordCacheResult) String() string {
	return fmt.Sprintf(`D7: TC record caching (Section 6.3)
  %d snapshot reads: %d version-store hits, %d read-cache hits, %d DC reads
  TC hit ratio %.3f — each hit avoids both the I/O and the DC lookup
  device read I/Os actually issued: %d
`, r.Reads, r.VersionStoreHits, r.ReadCacheHits, r.DCReads, r.TCHitRatio, r.DeviceReads)
}

// ---------------------------------------------------------------------------
// A1: eviction-policy ablation — none vs LRU vs the breakeven rule, on a
// hot/cold workload with an advancing virtual clock. Costs are evaluated
// with the paper's Section 4.1 model over the measured footprint and rates.

// PolicyOutcome is one policy's measured outcome.
type PolicyOutcome struct {
	Policy        llama.Policy
	MissFraction  float64
	FootprintMB   float64
	Evictions     int64
	EstCostPerSec float64 // model-estimated $/s for the measured mix
}

// EvictionAblation is the A1 output.
type EvictionAblation struct {
	Outcomes []PolicyOutcome
}

// MeasureEvictionPolicies runs the same hot/cold workload under each
// policy. The virtual clock advances so cold pages age past T_i.
func MeasureEvictionPolicies(keys int, ops int) (*EvictionAblation, error) {
	costs := core.PaperCosts()
	ti := costs.BreakevenInterval()
	res := &EvictionAblation{}
	for _, pol := range []llama.Policy{llama.PolicyNone, llama.PolicyLRU, llama.PolicyBreakeven} {
		s, err := newStack(ssd.UserLevelPath)
		if err != nil {
			return nil, err
		}
		if err := s.load(uint64(keys), 64); err != nil {
			return nil, err
		}
		cfg := llama.Config{
			Owner:            s.tree,
			Clock:            s.sess.Clock(),
			Policy:           pol,
			RetainDeltas:     true,
			BreakevenSeconds: ti,
		}
		if pol == llama.PolicyLRU {
			cfg.BudgetBytes = s.tree.FootprintBytes() / 4
			cfg.FootprintFn = s.tree.FootprintBytes
		}
		mgr, err := llama.NewManager(cfg)
		if err != nil {
			return nil, err
		}
		dataBytes := float64(s.tree.FootprintBytes()) // all data starts resident
		hot := workload.NewHotCold(13, 0.1, 0.95)
		s.sess.Tracker().Reset()
		start := s.sess.Clock().Now()
		for i := 0; i < ops; i++ {
			id := hot.Next(uint64(keys))
			if _, _, err := s.tree.Get(workload.Key(id)); err != nil {
				return nil, err
			}
			// Advance virtual time so the cold 90% of pages age past T_i
			// between touches while hot pages stay fresh.
			s.sess.Clock().Advance(ti / float64(ops) * 20)
			if i%200 == 199 {
				if _, err := mgr.Sweep(); err != nil {
					return nil, err
				}
			}
		}
		elapsed := s.sess.Clock().Now() - start
		tk := s.sess.Tracker()
		f := tk.MissFraction()
		fp := float64(s.tree.FootprintBytes())
		// Model (paper Equations 4–5 applied to the measured state): DRAM
		// rent for the resident footprint, flash rent for the durable copy
		// of all data, and execution cost at the workload's actual rate.
		n := float64(ops) / elapsed
		memRent := fp * costs.DRAMPerByte
		flashRent := dataBytes * costs.FlashPerByte
		exec := n * ((1-f)*costs.MMExecCostPerOp() + f*costs.SSExecCostPerOp())
		res.Outcomes = append(res.Outcomes, PolicyOutcome{
			Policy:        pol,
			MissFraction:  f,
			FootprintMB:   fp / (1 << 20),
			Evictions:     mgr.Stats().BreakevenEvicts.Value() + mgr.Stats().BudgetEvicts.Value(),
			EstCostPerSec: memRent + flashRent + exec,
		})
	}
	return res, nil
}

// String renders the A1 result.
func (r *EvictionAblation) String() string {
	var b strings.Builder
	b.WriteString("A1: eviction-policy ablation (hot/cold 90/10)\n")
	fmt.Fprintf(&b, "%12s %8s %12s %10s %14s\n", "policy", "missF", "footprintMB", "evicts", "est $/s (rel)")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%12s %8.4f %12.2f %10d %14.4g\n",
			o.Policy, o.MissFraction, o.FootprintMB, o.Evictions, o.EstCostPerSec)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// A2: consolidation-threshold ablation — the Bw-tree design knob DESIGN.md
// calls out. Longer chains defer consolidation work but make every lookup
// walk more deltas.

// ConsolidationPoint is one threshold's measured cost.
type ConsolidationPoint struct {
	Threshold     int
	MeanReadCost  float64
	MeanWriteCost float64
}

// ConsolidationAblation is the A2 output.
type ConsolidationAblation struct {
	Points []ConsolidationPoint
}

// MeasureConsolidationThreshold sweeps the delta-chain threshold under an
// update-heavy workload.
func MeasureConsolidationThreshold(keys, ops int, thresholds []int) (*ConsolidationAblation, error) {
	res := &ConsolidationAblation{}
	for _, th := range thresholds {
		sess := sim.NewSession(sim.DefaultCosts())
		tree, err := bwtree.New(bwtree.Config{Session: sess, ConsolidateAfter: th})
		if err != nil {
			return nil, err
		}
		for i := 0; i < keys; i++ {
			if err := tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
				return nil, err
			}
		}
		sess.Tracker().Reset()
		rng := rand.New(rand.NewSource(int64(th)))
		writes, reads := 0, 0
		var writeCost, readCost sim.Cost
		for i := 0; i < ops; i++ {
			id := uint64(rng.Int63n(int64(keys)))
			before := sess.Tracker().CostOf(sim.OpMM)
			if i%2 == 0 {
				if err := tree.Insert(workload.Key(id), workload.ValueFor(id, 64)); err != nil {
					return nil, err
				}
				writeCost += sess.Tracker().CostOf(sim.OpMM) - before
				writes++
			} else {
				if _, _, err := tree.Get(workload.Key(id)); err != nil {
					return nil, err
				}
				readCost += sess.Tracker().CostOf(sim.OpMM) - before
				reads++
			}
		}
		res.Points = append(res.Points, ConsolidationPoint{
			Threshold:     th,
			MeanReadCost:  float64(readCost) / float64(reads),
			MeanWriteCost: float64(writeCost) / float64(writes),
		})
	}
	return res, nil
}

// String renders the A2 result.
func (r *ConsolidationAblation) String() string {
	var b strings.Builder
	b.WriteString("A2: delta-chain consolidation threshold ablation (update-heavy)\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "threshold", "read cost/op", "write cost/op")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %14.1f %14.1f\n", p.Threshold, p.MeanReadCost, p.MeanWriteCost)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// A3: device-profile sweep (paper Sections 7.1.2, 8.2, 8.3): how the
// five-minute rule moves across SSD generations, HDDs, and NVRAM.

// DevicePoint is one device's model evaluation.
type DevicePoint struct {
	Name          string
	IOPS          float64
	BreakevenSecs float64
	BreakevenRate float64
}

// DeviceSweep is the A3 output.
type DeviceSweep struct {
	Points []DevicePoint
}

// MeasureDeviceSweep evaluates Equation 6 for each device profile.
func MeasureDeviceSweep() *DeviceSweep {
	base := core.PaperCosts()
	res := &DeviceSweep{}
	for _, cfg := range []ssd.Config{ssd.SamsungSSD, ssd.NextGenSSD, ssd.EnterpriseHDD, ssd.CommodityHDD, ssd.NVRAM} {
		c := base
		c.IOPS = cfg.MaxIOPS
		if cfg.IOPSCost > 0 {
			c.IOPSCost = cfg.IOPSCost
		} else {
			c.IOPSCost = 1e-6 // NVRAM: no bundled I/O capability cost
		}
		c.FlashPerByte = cfg.CostPerByte
		if cfg.Path == ssd.KernelPath {
			c.R = 9 // conventional OS I/O path (paper Section 7.1.1)
		}
		res.Points = append(res.Points, DevicePoint{
			Name:          cfg.Name,
			IOPS:          cfg.MaxIOPS,
			BreakevenSecs: c.BreakevenInterval(),
			BreakevenRate: c.BreakevenRate(),
		})
	}
	return res
}

// String renders the A3 result.
func (r *DeviceSweep) String() string {
	var b strings.Builder
	b.WriteString("A3: five-minute rule across device profiles (Equation 6)\n")
	fmt.Fprintf(&b, "%16s %12s %16s %16s\n", "device", "IOPS", "breakeven T_i(s)", "breakeven ops/s")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%16s %12.3g %16.4g %16.4g\n", p.Name, p.IOPS, p.BreakevenSecs, p.BreakevenRate)
	}
	return b.String()
}
