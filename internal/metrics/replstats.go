package metrics

import "fmt"

// ReplStats counts log-shipping replication activity between a primary and
// its warm standby (internal/repl). It lives in this package (rather than
// in repl) so internal/obs can fold it into CostSnapshots without importing
// the replication layer, mirroring how IOStats/MirrorStats/Health are
// shared. All counters are cumulative; the zero value is ready to use.
type ReplStats struct {
	// Shipper side.
	BatchesShipped Counter // frames handed to the transport (including resends)
	BytesShipped   Counter // payload bytes handed to the transport
	Resends        Counter // frames re-shipped after a timeout or nak
	AcksOK         Counter // positive acks received
	Naks           Counter // negative acks received (gap or fence)

	// Standby side.
	BatchesApplied Counter // frames durably logged and applied
	RecordsApplied Counter // commit records applied to the standby DC
	BytesApplied   Counter // payload bytes durably logged on the standby
	DupBatches     Counter // duplicate frames re-acked without reapplying
	GapNaks        Counter // out-of-order frames nak'd back to the shipper
	FencedFrames   Counter // frames rejected for carrying a stale epoch

	// Failover.
	Promotions   Counter // standby promotions to primary
	FencedWrites Counter // stale-primary commits rejected by the epoch gate

	// LSN gauges: the shipper's ship cursor, the highest standby-acked LSN,
	// the standby's applied LSN, and the primary durable LSN last observed
	// by the standby (AppliedLSN lagging PrimaryDurable is replication lag).
	ShipCursor     Gauge
	AckedLSN       Gauge
	AppliedLSN     Gauge
	PrimaryDurable Gauge
}

// LagBytes reports the standby's current apply lag in log bytes, as of the
// last frame it saw (never negative).
func (r *ReplStats) LagBytes() int64 {
	lag := r.PrimaryDurable.Value() - r.AppliedLSN.Value()
	if lag < 0 {
		return 0
	}
	return lag
}

// String renders the stats for experiment logs.
func (r *ReplStats) String() string {
	return fmt.Sprintf("shipped=%d/%dB resend=%d ack=%d nak=%d applied=%d/%dB dup=%d gap=%d fenced=%d/%d promotions=%d lag=%dB",
		r.BatchesShipped.Value(), r.BytesShipped.Value(), r.Resends.Value(),
		r.AcksOK.Value(), r.Naks.Value(),
		r.BatchesApplied.Value(), r.BytesApplied.Value(),
		r.DupBatches.Value(), r.GapNaks.Value(),
		r.FencedFrames.Value(), r.FencedWrites.Value(),
		r.Promotions.Value(), r.LagBytes())
}
