package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestHealthDegradeReasonRace drives Degrade and Reason from many
// goroutines at once (run under -race): readers must never observe a torn
// reason, and after the dust settles exactly one degradation reason must
// have been latched.
func TestHealthDegradeReasonRace(t *testing.T) {
	var h Health
	const writers, readers = 8, 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				h.Degrade(fmt.Sprintf("writer-%d-iter-%d", i, j))
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				_ = h.Reason()
				_ = h.State()
				_ = h.String()
			}
		}()
	}
	close(start)
	wg.Wait()
	if !h.Degraded() {
		t.Fatal("health not degraded after concurrent Degrade calls")
	}
	if h.Reason() == "" {
		t.Fatal("no reason latched")
	}
	if got := h.Degradations.Value(); got != writers*100 {
		t.Fatalf("Degradations = %d, want %d", got, writers*100)
	}
}

// TestHealthProbeRestore walks the circuit-breaker state machine:
// healthy -> degraded -> probing -> degraded (probe failed) -> probing ->
// healthy (probe succeeded).
func TestHealthProbeRestore(t *testing.T) {
	var h Health
	if h.Probe() {
		t.Fatal("Probe from healthy must fail (nothing to probe)")
	}
	if !h.Degrade("first failure") {
		t.Fatal("Degrade from healthy must transition")
	}
	if !h.Probe() {
		t.Fatal("Probe from degraded must win the slot")
	}
	if h.State() != HealthProbing {
		t.Fatalf("state = %v, want probing", h.State())
	}
	if h.Probe() {
		t.Fatal("second Probe must lose while one is in flight")
	}
	// Probe failed: circuit reopens, original reason retained.
	if !h.Degrade("probe failed") {
		t.Fatal("Degrade from probing must transition")
	}
	if got := h.Reason(); got != "first failure" {
		t.Fatalf("reason = %q, want the first latched reason", got)
	}
	// Probe again, this time successfully.
	if !h.Probe() {
		t.Fatal("re-Probe from degraded must win")
	}
	if !h.Restore() {
		t.Fatal("Restore from probing must transition")
	}
	if h.State() != HealthHealthy || h.Degraded() {
		t.Fatalf("state = %v, want healthy", h.State())
	}
	if h.Reason() != "" {
		t.Fatalf("reason %q not cleared by Restore", h.Reason())
	}
	if h.Restore() {
		t.Fatal("Restore from healthy must be a no-op")
	}
	// A fresh degradation after a restore records its own reason.
	if !h.Degrade("second failure") {
		t.Fatal("Degrade after Restore must transition")
	}
	if got := h.Reason(); got != "second failure" {
		t.Fatalf("reason = %q, want the post-restore reason", got)
	}
	if h.Probes.Value() != 2 || h.Restores.Value() != 1 {
		t.Fatalf("probes=%d restores=%d, want 2/1", h.Probes.Value(), h.Restores.Value())
	}
}

// TestHealthProbeExclusive races many probers against one degraded
// indicator: exactly one may hold the half-open slot.
func TestHealthProbeExclusive(t *testing.T) {
	var h Health
	h.Degrade("down")
	const probers = 16
	var wg sync.WaitGroup
	wins := make(chan int, probers)
	start := make(chan struct{})
	for i := 0; i < probers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if h.Probe() {
				wins <- i
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d probers won the slot, want exactly 1", n)
	}
}
