package metrics

import "fmt"

// IOStats aggregates the I/O-level counters every storage engine in this
// repository reports. The cost model consumes these to attribute secondary
// storage execution and rental costs (paper Section 3.2).
//
// Retry accounting: Reads and Writes count *logical* I/Os — each request
// that ultimately succeeded counts exactly once, no matter how many times a
// bounded-retry loop re-issued it. Every failed physical attempt is charged
// to FailedReads/FailedWrites instead (and still accrues device busy time),
// so total physical device traffic is Reads+FailedReads (resp.
// Writes+FailedWrites) and retries can never inflate the logical op counts.
type IOStats struct {
	Reads        Counter // read I/Os completed (logical: once per successful request)
	Writes       Counter // write I/Os completed (logical: once per successful request)
	FailedReads  Counter // failed physical read attempts (each retry re-issue that errored)
	FailedWrites Counter // failed physical write attempts (each retry re-issue that errored)
	BytesRead    Counter // bytes transferred device -> memory
	BytesWritten Counter // bytes transferred memory -> device
	CacheHits    Counter // operations satisfied from the in-memory cache (MM ops)
	CacheMisses  Counter // operations that required device access (SS ops)
	Evictions    Counter // pages/records evicted from cache
	GCReclaimed  Counter // bytes reclaimed by log-structured garbage collection
	GCWrites     Counter // bytes relocated by garbage collection (write amplification)
}

// MissRatio returns the cache-miss fraction F used throughout the paper's
// analysis: misses / (hits + misses). It returns 0 when no operations have
// been recorded.
func (s *IOStats) MissRatio() float64 {
	h, m := s.CacheHits.Value(), s.CacheMisses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// WriteAmplification returns total device writes (including GC relocation)
// divided by user bytes written, or 0 when nothing has been written.
func (s *IOStats) WriteAmplification() float64 {
	user := s.BytesWritten.Value() - s.GCWrites.Value()
	if user <= 0 {
		return 0
	}
	return float64(s.BytesWritten.Value()) / float64(user)
}

// ReclassifyRead moves one read from the logical Reads column to
// FailedReads: the device-level transfer completed, but the payload later
// failed checksum verification (a store-layer decode, or a mirror leg's
// per-page verify), so the attempt must count as a failed physical read,
// not a logical one — otherwise a retry that re-reads the data would
// inflate the logical count exactly the way the Reads/FailedReads split
// exists to prevent. BytesRead is left alone: the corrupt payload really
// did move across the bus.
func (s *IOStats) ReclassifyRead() {
	s.Reads.dec()
	s.FailedReads.Inc()
}

// Reset zeroes every counter.
func (s *IOStats) Reset() {
	s.Reads.Reset()
	s.Writes.Reset()
	s.FailedReads.Reset()
	s.FailedWrites.Reset()
	s.BytesRead.Reset()
	s.BytesWritten.Reset()
	s.CacheHits.Reset()
	s.CacheMisses.Reset()
	s.Evictions.Reset()
	s.GCReclaimed.Reset()
	s.GCWrites.Reset()
}

// String renders the stats for experiment logs.
func (s *IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d failedR=%d failedW=%d bytesR=%d bytesW=%d hits=%d misses=%d (F=%.4f) evict=%d",
		s.Reads.Value(), s.Writes.Value(), s.FailedReads.Value(), s.FailedWrites.Value(),
		s.BytesRead.Value(), s.BytesWritten.Value(),
		s.CacheHits.Value(), s.CacheMisses.Value(), s.MissRatio(), s.Evictions.Value())
}
