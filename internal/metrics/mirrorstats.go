package metrics

import "fmt"

// MirrorStats counts the self-healing activity of a mirrored device pair
// (ssd.Mirror): checksum-verified reads, failovers to the second leg,
// read-path repairs, background scrubber traffic, and pages quarantined
// after both legs failed verification. It lives in this package (rather
// than in ssd) so internal/obs can fold it into CostSnapshots without
// importing the device layer, mirroring how IOStats/RetryStats/Health are
// shared. All counters are cumulative; the zero value is ready to use.
type MirrorStats struct {
	VerifiedReads Counter // mirror reads whose payload passed per-page verification
	Failovers     Counter // reads served from the second leg after the first leg's I/O failed
	ReadRepairs   Counter // pages rewritten from the intact leg by the read path
	ScrubPasses   Counter // complete scrubber sweeps over the checksummed page set
	ScrubReads    Counter // page-verification reads issued by the scrubber (one per leg per page)
	ScrubRepairs  Counter // pages rewritten from the intact leg by the scrubber
	Quarantined   Counter // pages disabled because both legs failed verification
}

// Reset zeroes every counter.
func (m *MirrorStats) Reset() {
	m.VerifiedReads.Reset()
	m.Failovers.Reset()
	m.ReadRepairs.Reset()
	m.ScrubPasses.Reset()
	m.ScrubReads.Reset()
	m.ScrubRepairs.Reset()
	m.Quarantined.Reset()
}

// String renders the stats for experiment logs.
func (m *MirrorStats) String() string {
	return fmt.Sprintf("verified=%d failover=%d readrepair=%d scrubpass=%d scrubread=%d scrubrepair=%d quarantined=%d",
		m.VerifiedReads.Value(), m.Failovers.Value(), m.ReadRepairs.Value(),
		m.ScrubPasses.Value(), m.ScrubReads.Value(), m.ScrubRepairs.Value(),
		m.Quarantined.Value())
}
