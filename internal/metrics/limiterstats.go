package metrics

import "fmt"

// LimiterStats meters an adaptive concurrency limiter (internal/overload):
// the live limit the gradient controller converged on, its latency-floor
// estimate, the advisory retry-after hint, and shedding broken down by
// priority class — the brownout ladder made observable. It lives in this
// package (rather than in overload) so internal/obs can fold it into
// CostSnapshots without importing the limiter, mirroring how
// MirrorStats/ReplStats/Health are shared. All counters are cumulative;
// the zero value is ready to use.
type LimiterStats struct {
	// Limit is the current concurrency limit; Inflight the operations
	// holding a slot right now.
	Limit    Gauge
	Inflight Gauge
	// Admitted counts operations granted a slot (fast path or after
	// queueing).
	Admitted Counter
	// LimitUps/LimitDowns count gradient updates that raised/lowered the
	// limit — the controller's activity, not its position.
	LimitUps   Counter
	LimitDowns Counter
	// FloorMicros is the limiter's current estimate of the store's
	// no-queue latency floor, in microseconds (the vegas-style baseline
	// the gradient compares against).
	FloorMicros Gauge
	// RetryAfterMicros is the advisory backoff the limiter currently
	// hands to shed callers (the wire server forwards it inside
	// StatusOverload responses).
	RetryAfterMicros Gauge
	// Shed by priority class, lowest first: the brownout ladder says
	// ShedScan fills first, ShedHigh only when everything below it is
	// already shedding, and probes are never shed at all (there is
	// deliberately no ShedProbe counter to increment).
	ShedScan   Counter
	ShedLow    Counter
	ShedNormal Counter
	ShedHigh   Counter
}

// ShedTotal sums shedding across every class.
func (l *LimiterStats) ShedTotal() int64 {
	return l.ShedScan.Value() + l.ShedLow.Value() + l.ShedNormal.Value() + l.ShedHigh.Value()
}

// String renders the stats for experiment logs.
func (l *LimiterStats) String() string {
	return fmt.Sprintf("limit=%d inflight=%d admitted=%d ups=%d downs=%d floor=%dus retryafter=%dus shed[scan=%d low=%d normal=%d high=%d]",
		l.Limit.Value(), l.Inflight.Value(), l.Admitted.Value(),
		l.LimitUps.Value(), l.LimitDowns.Value(),
		l.FloorMicros.Value(), l.RetryAfterMicros.Value(),
		l.ShedScan.Value(), l.ShedLow.Value(), l.ShedNormal.Value(), l.ShedHigh.Value())
}
