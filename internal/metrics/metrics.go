// Package metrics provides lightweight, concurrency-safe counters,
// gauges, and histograms used by the storage engines and the experiment
// harness to report operation counts, I/O counts, byte volumes, and
// latency/cost distributions.
//
// All types are safe for concurrent use and have useful zero values.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing concurrency-safe counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta added to Counter")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// dec subtracts one. It is deliberately unexported: the only legitimate
// non-monotonic edit is IOStats.ReclassifyRead moving a miscounted logical
// I/O between columns; everything else must stay monotonic.
func (c *Counter) dec() { c.v.Add(-1) }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a concurrency-safe value that can go up and down.
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta, which may be negative.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max updates the gauge to v if v is larger than the current value.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram records a distribution of float64 samples. It keeps running
// moments plus a bounded reservoir for quantile estimation.
//
// The zero value is ready to use.
type Histogram struct {
	mu        sync.Mutex
	count     int64
	sum       float64
	sumSq     float64
	min       float64
	max       float64
	reservoir []float64
	rngState  uint64
}

// reservoirSize bounds the memory used for quantile estimation.
const reservoirSize = 4096

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	h.sumSq += v * v
	if len(h.reservoir) < reservoirSize {
		h.reservoir = append(h.reservoir, v)
		return
	}
	// Vitter's algorithm R: replace a random slot with probability k/n.
	if h.rngState == 0 {
		h.rngState = 0x9e3779b97f4a7c15
	}
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	idx := h.rngState % uint64(h.count)
	if idx < reservoirSize {
		h.reservoir[idx] = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of observed samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// StdDev returns the population standard deviation, or 0 when empty.
func (h *Histogram) StdDev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	mean := h.sum / float64(h.count)
	variance := h.sumSq/float64(h.count) - mean*mean
	if variance < 0 {
		variance = 0 // guard against FP rounding
	}
	return math.Sqrt(variance)
}

// Min returns the smallest observed sample, or 0 when empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observed sample, or 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) from the
// reservoir sample. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of range [0,1]", q))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.reservoir) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.reservoir))
	copy(sorted, h.reservoir)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Snapshot is a point-in-time summary of a Histogram.
type Snapshot struct {
	Count  int64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Snapshot returns a consistent summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		StdDev: h.StdDev(),
		Min:    h.Min(),
		Max:    h.Max(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
	}
}

// String renders the snapshot compactly for experiment logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g min=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		s.Count, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}
