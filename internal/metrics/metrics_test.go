package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero Counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset = %d, want 0", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Counter = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge = %d, want 7", got)
	}
	g.Max(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("Max(5) lowered gauge to %d", got)
	}
	g.Max(100)
	if got := g.Value(); got != 100 {
		t.Fatalf("Max(100) = %d, want 100", got)
	}
}

func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			g.Max(v)
		}(int64(i))
	}
	wg.Wait()
	if got := g.Value(); got != 100 {
		t.Fatalf("concurrent Max = %d, want 100", got)
	}
}

func TestHistogramMoments(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	wantSD := math.Sqrt(2) // population sd of 1..5
	if got := h.StdDev(); math.Abs(got-wantSD) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", got, wantSD)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.StdDev() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("P50 = %v, want ~50", p50)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Q(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Q(1) = %v, want 100", got)
	}
}

func TestHistogramQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(2) did not panic")
		}
	}()
	var h Histogram
	h.Observe(1)
	h.Quantile(2)
}

func TestHistogramReservoirOverflow(t *testing.T) {
	var h Histogram
	n := reservoirSize * 4
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != int64(n) {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	// Quantiles should still be roughly uniform over [0, n).
	p50 := h.Quantile(0.5)
	if p50 < float64(n)*0.3 || p50 > float64(n)*0.7 {
		t.Fatalf("P50 after overflow = %v, want ~%v", p50, n/2)
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("snapshot count = %d, want 2", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

// Property: histogram mean always lies within [min, max].
func TestHistogramMeanBoundsProperty(t *testing.T) {
	f := func(raw []int32) bool {
		var h Histogram
		any := false
		for _, r := range raw {
			// Map to a moderate range so sumSq cannot overflow.
			v := float64(r) / 1e3
			h.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		m := h.Mean()
		// Allow tiny FP slack.
		return m >= h.Min()-1e-9*math.Abs(h.Min())-1e-9 &&
			m <= h.Max()+1e-9*math.Abs(h.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIOStatsMissRatio(t *testing.T) {
	var s IOStats
	if got := s.MissRatio(); got != 0 {
		t.Fatalf("empty MissRatio = %v, want 0", got)
	}
	s.CacheHits.Add(75)
	s.CacheMisses.Add(25)
	if got := s.MissRatio(); got != 0.25 {
		t.Fatalf("MissRatio = %v, want 0.25", got)
	}
}

func TestIOStatsWriteAmplification(t *testing.T) {
	var s IOStats
	if got := s.WriteAmplification(); got != 0 {
		t.Fatalf("empty WA = %v, want 0", got)
	}
	s.BytesWritten.Add(150)
	s.GCWrites.Add(50)
	if got := s.WriteAmplification(); got != 1.5 {
		t.Fatalf("WA = %v, want 1.5", got)
	}
}

func TestIOStatsResetAndString(t *testing.T) {
	var s IOStats
	s.Reads.Inc()
	s.Writes.Inc()
	s.CacheHits.Inc()
	if s.String() == "" {
		t.Fatal("empty String")
	}
	s.Reset()
	if s.Reads.Value() != 0 || s.Writes.Value() != 0 || s.CacheHits.Value() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestReclassifyRead(t *testing.T) {
	var s IOStats
	s.Reads.Inc()
	s.Reads.Inc()
	s.BytesRead.Add(4096)
	// A transfer that completed but carried a corrupt payload moves from
	// the logical count to the failed count; the bytes really moved and
	// stay where they are.
	s.ReclassifyRead()
	if got := s.Reads.Value(); got != 1 {
		t.Fatalf("Reads = %d after reclassify, want 1", got)
	}
	if got := s.FailedReads.Value(); got != 1 {
		t.Fatalf("FailedReads = %d after reclassify, want 1", got)
	}
	if got := s.BytesRead.Value(); got != 4096 {
		t.Fatalf("BytesRead = %d after reclassify, want 4096", got)
	}
}
