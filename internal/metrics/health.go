package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// HealthState is a store's operational state.
type HealthState int32

const (
	// HealthHealthy is the normal full-service state.
	HealthHealthy HealthState = iota
	// HealthDegraded is the read-only state a store latches into after a
	// persistent write failure: reads keep being served from whatever is
	// durable or cached, writes fail fast instead of corrupting state.
	HealthDegraded
	// HealthProbing is the circuit breaker's half-open state: one probe
	// operation is in flight to test whether the fault condition cleared.
	// Probing resolves to healthy (Restore) or back to degraded (Degrade).
	HealthProbing
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case HealthDegraded:
		return "degraded"
	case HealthProbing:
		return "probing"
	default:
		return "healthy"
	}
}

// Health is a latching store-health indicator with an optional
// probe/restore escape hatch. The zero value is healthy and ready to use.
// The first Degrade wins; the reason is retained for observability.
// All methods are safe for concurrent use.
//
// Stores use only Degrade — their degradation is permanent until reopen.
// The engine's circuit breaker additionally uses Probe/Restore to
// implement half-open probing: Probe claims the single in-flight probe
// slot, Restore closes the circuit on probe success, and Degrade (from
// probing) reopens it on probe failure.
type Health struct {
	state  atomic.Int32
	mu     sync.Mutex
	reason string
	// Degradations counts Degrade calls (including redundant ones), so a
	// flapping fault source is visible even though the state only latches
	// once.
	Degradations Counter
	// Probes counts successful Probe transitions (degraded -> probing).
	Probes Counter
	// Restores counts successful Restore transitions back to healthy.
	Restores Counter
}

// Degrade latches the degraded (read-only) state from healthy or probing,
// recording reason on each transition. It reports whether this call
// performed a transition.
func (h *Health) Degrade(reason string) bool {
	h.Degradations.Inc()
	for {
		cur := h.state.Load()
		if cur == int32(HealthDegraded) {
			return false
		}
		if h.state.CompareAndSwap(cur, int32(HealthDegraded)) {
			h.mu.Lock()
			if h.reason == "" {
				h.reason = reason
			}
			h.mu.Unlock()
			return true
		}
	}
}

// Probe claims the half-open probe slot: it transitions degraded ->
// probing and reports whether this caller won the slot. At most one
// prober holds the slot; everyone else keeps failing fast until the probe
// resolves via Restore (success) or Degrade (failure).
func (h *Health) Probe() bool {
	if !h.state.CompareAndSwap(int32(HealthDegraded), int32(HealthProbing)) {
		return false
	}
	h.Probes.Inc()
	return true
}

// Restore returns the indicator to healthy (clearing the recorded reason)
// from probing or degraded, and reports whether a transition happened.
// The probing -> healthy edge is the circuit breaker's probe-success
// close; the degraded -> healthy edge supports administrative reset.
func (h *Health) Restore() bool {
	for {
		cur := h.state.Load()
		if cur == int32(HealthHealthy) {
			return false
		}
		if h.state.CompareAndSwap(cur, int32(HealthHealthy)) {
			h.mu.Lock()
			h.reason = ""
			h.mu.Unlock()
			h.Restores.Inc()
			return true
		}
	}
}

// Degraded reports whether the store has latched into the degraded state.
func (h *Health) Degraded() bool { return h.State() == HealthDegraded }

// State returns the current state.
func (h *Health) State() HealthState { return HealthState(h.state.Load()) }

// Reason returns the reason recorded by the first Degrade, or "".
func (h *Health) Reason() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// String renders the health for experiment logs.
func (h *Health) String() string {
	s := h.State()
	if s == HealthHealthy {
		return "healthy"
	}
	if r := h.Reason(); r != "" {
		return fmt.Sprintf("%s (%s)", s, r)
	}
	return s.String()
}

// RetryStats meters an I/O retry budget: how many attempts a store issued,
// how many were re-attempts after transient failures, and how the retried
// operations ultimately resolved. The zero value is ready to use.
type RetryStats struct {
	Attempts      Counter // every attempt, first tries included
	Retries       Counter // re-attempts after a transient failure
	Absorbed      Counter // operations that succeeded after >= 1 retry
	Exhausted     Counter // operations that failed through the attempt bound
	BackoffMicros Counter // virtual microseconds spent backing off
}

// String renders the retry stats for experiment logs.
func (r *RetryStats) String() string {
	return fmt.Sprintf("attempts=%d retries=%d absorbed=%d exhausted=%d backoff=%dus",
		r.Attempts.Value(), r.Retries.Value(), r.Absorbed.Value(),
		r.Exhausted.Value(), r.BackoffMicros.Value())
}
