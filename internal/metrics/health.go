package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// HealthState is a store's operational state.
type HealthState int32

const (
	// HealthHealthy is the normal full-service state.
	HealthHealthy HealthState = iota
	// HealthDegraded is the read-only state a store latches into after a
	// persistent write failure: reads keep being served from whatever is
	// durable or cached, writes fail fast instead of corrupting state.
	HealthDegraded
)

// String names the state.
func (s HealthState) String() string {
	if s == HealthDegraded {
		return "degraded"
	}
	return "healthy"
}

// Health is a latching store-health indicator. The zero value is healthy
// and ready to use. The first Degrade wins; the reason is retained for
// observability. All methods are safe for concurrent use.
type Health struct {
	state  atomic.Int32
	mu     sync.Mutex
	reason string
	// Degradations counts Degrade calls (including redundant ones), so a
	// flapping fault source is visible even though the state only latches
	// once.
	Degradations Counter
}

// Degrade latches the degraded (read-only) state, recording reason on the
// first transition. It reports whether this call performed the transition.
func (h *Health) Degrade(reason string) bool {
	h.Degradations.Inc()
	if !h.state.CompareAndSwap(int32(HealthHealthy), int32(HealthDegraded)) {
		return false
	}
	h.mu.Lock()
	h.reason = reason
	h.mu.Unlock()
	return true
}

// Degraded reports whether the store has latched into the degraded state.
func (h *Health) Degraded() bool { return h.State() == HealthDegraded }

// State returns the current state.
func (h *Health) State() HealthState { return HealthState(h.state.Load()) }

// Reason returns the reason recorded by the first Degrade, or "".
func (h *Health) Reason() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// String renders the health for experiment logs.
func (h *Health) String() string {
	if !h.Degraded() {
		return "healthy"
	}
	return fmt.Sprintf("degraded (%s)", h.Reason())
}

// RetryStats meters an I/O retry budget: how many attempts a store issued,
// how many were re-attempts after transient failures, and how the retried
// operations ultimately resolved. The zero value is ready to use.
type RetryStats struct {
	Attempts      Counter // every attempt, first tries included
	Retries       Counter // re-attempts after a transient failure
	Absorbed      Counter // operations that succeeded after >= 1 retry
	Exhausted     Counter // operations that failed through the attempt bound
	BackoffMicros Counter // virtual microseconds spent backing off
}

// String renders the retry stats for experiment logs.
func (r *RetryStats) String() string {
	return fmt.Sprintf("attempts=%d retries=%d absorbed=%d exhausted=%d backoff=%dus",
		r.Attempts.Value(), r.Retries.Value(), r.Absorbed.Value(),
		r.Exhausted.Value(), r.BackoffMicros.Value())
}
