package llama

import (
	"errors"
	"sync"
	"time"
)

// Sweeper runs a Manager's eviction pass periodically on a background
// goroutine — the always-on form of cache maintenance a production
// deployment would use, versus the explicit Sweep calls the experiment
// harness prefers for determinism.
type Sweeper struct {
	mgr      *Manager
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	lastErr error
}

// NewSweeper creates a sweeper driving mgr every interval.
func NewSweeper(mgr *Manager, interval time.Duration) (*Sweeper, error) {
	if mgr == nil {
		return nil, errors.New("llama: nil manager")
	}
	if interval <= 0 {
		return nil, errors.New("llama: non-positive sweep interval")
	}
	return &Sweeper{mgr: mgr, interval: interval}, nil
}

// Start launches the background loop. Starting an already-running sweeper
// is a no-op.
func (s *Sweeper) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sweeper) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if _, err := s.mgr.Sweep(); err != nil {
				s.mu.Lock()
				s.lastErr = err
				s.mu.Unlock()
				return // a failing owner is not something to retry blindly
			}
		}
	}
}

// Stop halts the loop and waits for it to exit. Stopping a stopped
// sweeper is a no-op. It returns the error that terminated the loop
// early, if any.
func (s *Sweeper) Stop() error {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return s.Err()
	}
	close(stop)
	<-done
	return s.Err()
}

// Err returns the error that terminated the loop, if any.
func (s *Sweeper) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}
