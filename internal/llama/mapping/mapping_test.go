package mapping

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

type state struct{ v int }

func TestAllocateDistinctPIDs(t *testing.T) {
	tb := New[state](0)
	seen := map[PID]bool{}
	for i := 0; i < 1000; i++ {
		pid, err := tb.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if pid == NilPID {
			t.Fatal("allocated nil PID")
		}
		if seen[pid] {
			t.Fatalf("duplicate PID %d", pid)
		}
		seen[pid] = true
	}
}

func TestGetStoreCAS(t *testing.T) {
	tb := New[state](0)
	pid, _ := tb.Allocate()
	if got := tb.Get(pid); got != nil {
		t.Fatalf("fresh entry = %v, want nil", got)
	}
	a := &state{1}
	if !tb.CompareAndSwap(pid, nil, a) {
		t.Fatal("CAS from nil failed")
	}
	if got := tb.Get(pid); got != a {
		t.Fatal("Get did not return installed state")
	}
	b := &state{2}
	if tb.CompareAndSwap(pid, nil, b) {
		t.Fatal("stale CAS succeeded")
	}
	if !tb.CompareAndSwap(pid, a, b) {
		t.Fatal("valid CAS failed")
	}
	if got := tb.Get(pid); got != b {
		t.Fatal("state not updated")
	}
}

func TestMaxPIDsEnforced(t *testing.T) {
	tb := New[state](3)
	for i := 0; i < 3; i++ {
		if _, err := tb.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Allocate(); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestFreeRecycles(t *testing.T) {
	tb := New[state](0)
	pid, _ := tb.Allocate()
	tb.Store(pid, &state{7})
	tb.Free(pid)
	if got := tb.Get(pid); got != nil {
		t.Fatal("freed entry not cleared")
	}
	pid2, _ := tb.Allocate()
	if pid2 != pid {
		t.Fatalf("recycled PID = %d, want %d", pid2, pid)
	}
}

func TestFreeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Free(NilPID) did not panic")
		}
	}()
	New[state](0).Free(NilPID)
}

func TestOutOfRangePanics(t *testing.T) {
	tb := New[state](0)
	defer func() {
		if recover() == nil {
			t.Fatal("Get of unallocated far PID did not panic")
		}
	}()
	tb.Get(PID(1 << 40))
}

func TestStoreBeyondAllocated(t *testing.T) {
	// Recovery installs states at arbitrary PIDs.
	tb := New[state](0)
	tb.Store(PID(100), &state{5})
	if got := tb.Get(PID(100)); got == nil || got.v != 5 {
		t.Fatalf("Get(100) = %v", got)
	}
	if tb.MaxPID() < 100 {
		t.Fatalf("MaxPID = %d, want >= 100", tb.MaxPID())
	}
	// Subsequent allocation must not collide.
	pid, _ := tb.Allocate()
	if pid <= 100 {
		t.Fatalf("Allocate after Store(100) = %d, must be > 100", pid)
	}
}

func TestRange(t *testing.T) {
	tb := New[state](0)
	want := map[PID]int{}
	for i := 1; i <= 5; i++ {
		pid, _ := tb.Allocate()
		tb.Store(pid, &state{i})
		want[pid] = i
	}
	got := map[PID]int{}
	tb.Range(func(pid PID, s *state) bool {
		got[pid] = s.v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for pid, v := range want {
		if got[pid] != v {
			t.Fatalf("pid %d = %d, want %d", pid, got[pid], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New[state](0)
	for i := 0; i < 10; i++ {
		pid, _ := tb.Allocate()
		tb.Store(pid, &state{i})
	}
	n := 0
	tb.Range(func(PID, *state) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestConcurrentCASExactlyOneWinner(t *testing.T) {
	tb := New[state](0)
	pid, _ := tb.Allocate()
	base := &state{0}
	tb.Store(pid, base)
	const workers = 16
	var mu sync.Mutex
	winners := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if tb.CompareAndSwap(pid, base, &state{w + 1}) {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

func TestConcurrentAllocate(t *testing.T) {
	tb := New[state](0)
	const workers, each = 8, 200
	pids := make(chan PID, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				pid, err := tb.Allocate()
				if err != nil {
					t.Errorf("allocate: %v", err)
					return
				}
				pids <- pid
			}
		}()
	}
	wg.Wait()
	close(pids)
	seen := map[PID]bool{}
	for pid := range pids {
		if seen[pid] {
			t.Fatalf("duplicate PID %d under concurrency", pid)
		}
		seen[pid] = true
	}
}

func TestSegmentGrowth(t *testing.T) {
	tb := New[state](0)
	// Force allocation across multiple segments.
	var last PID
	for i := 0; i < segmentSize+10; i++ {
		pid, err := tb.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		last = pid
	}
	tb.Store(last, &state{42})
	if got := tb.Get(last); got == nil || got.v != 42 {
		t.Fatalf("cross-segment Get = %v", got)
	}
}

// Property: Store then Get returns the same pointer for arbitrary PIDs.
func TestStoreGetProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tb := New[state](0)
		m := map[PID]*state{}
		for _, r := range raw {
			pid := PID(r) + 1
			s := &state{int(r)}
			tb.Store(pid, s)
			m[pid] = s
		}
		for pid, want := range m {
			if tb.Get(pid) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
