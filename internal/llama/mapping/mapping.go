// Package mapping implements LLAMA's latch-free mapping table (paper
// Figure 4): an indirection from logical page identifiers (PIDs) to the
// current state of the page. The mapping table is the central enabler of
// the Bw-tree's latch-free delta updating — installing a new page state is
// a single compare-and-swap on the PID's entry — and of blind updates,
// since a delta can be prepended to an entry whose base page lives only on
// secondary storage.
//
// Entries are generic over the page-state type S; states must be treated
// as immutable once published.
package mapping

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PID is a logical page identifier. PID 0 is reserved as "nil".
type PID uint64

// NilPID is the reserved invalid PID.
const NilPID PID = 0

// ErrFull is returned by Allocate when the table reached its configured
// maximum size.
var ErrFull = errors.New("mapping: table full")

const (
	segmentBits = 16
	segmentSize = 1 << segmentBits // entries per segment
	segmentMask = segmentSize - 1
)

// Table is a latch-free mapping table from PID to *S. Reads and CAS
// installs are lock-free; only segment growth takes a lock.
type Table[S any] struct {
	mu       sync.Mutex // guards segment growth and the free list
	segments atomic.Pointer[[]*segment[S]]
	next     atomic.Uint64 // next never-used PID
	free     []PID         // recycled PIDs
	maxPIDs  uint64
}

type segment[S any] struct {
	slots [segmentSize]atomic.Pointer[S]
}

// New returns a table that can hold up to maxPIDs live pages (0 means
// practically unbounded).
func New[S any](maxPIDs uint64) *Table[S] {
	t := &Table[S]{maxPIDs: maxPIDs}
	t.next.Store(1) // PID 0 reserved
	segs := make([]*segment[S], 0, 4)
	t.segments.Store(&segs)
	return t
}

// Allocate reserves a fresh PID with a nil state.
func (t *Table[S]) Allocate() (PID, error) {
	t.mu.Lock()
	if n := len(t.free); n > 0 {
		pid := t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
		return pid, nil
	}
	pid := PID(t.next.Load())
	if t.maxPIDs != 0 && uint64(pid) > t.maxPIDs {
		t.mu.Unlock()
		return NilPID, ErrFull
	}
	t.next.Add(1)
	t.ensureSegmentLocked(pid)
	t.mu.Unlock()
	return pid, nil
}

// ensureSegmentLocked grows the segment directory to cover pid.
// Caller holds t.mu.
func (t *Table[S]) ensureSegmentLocked(pid PID) {
	idx := int(uint64(pid) >> segmentBits)
	cur := *t.segments.Load()
	if idx < len(cur) && cur[idx] != nil {
		return
	}
	grown := make([]*segment[S], idx+1)
	copy(grown, cur)
	for i := range grown {
		if grown[i] == nil {
			grown[i] = &segment[S]{}
		}
	}
	t.segments.Store(&grown)
}

// Free recycles a PID. The caller must guarantee no concurrent users of
// the PID remain (in the Bw-tree this follows a remove-node protocol).
func (t *Table[S]) Free(pid PID) {
	if pid == NilPID {
		panic("mapping: freeing nil PID")
	}
	t.slot(pid).Store(nil)
	t.mu.Lock()
	t.free = append(t.free, pid)
	t.mu.Unlock()
}

func (t *Table[S]) slot(pid PID) *atomic.Pointer[S] {
	segs := *t.segments.Load()
	idx := int(uint64(pid) >> segmentBits)
	if pid == NilPID || idx >= len(segs) || segs[idx] == nil {
		panic(fmt.Sprintf("mapping: PID %d out of range", pid))
	}
	return &segs[idx].slots[uint64(pid)&segmentMask]
}

// Get returns the current state for pid (nil if unset).
func (t *Table[S]) Get(pid PID) *S {
	return t.slot(pid).Load()
}

// CompareAndSwap atomically installs next if the entry still holds old.
// This is the latch-free update primitive of the Bw-tree: prepend a delta
// or install a consolidated page in one CAS.
func (t *Table[S]) CompareAndSwap(pid PID, old, next *S) bool {
	return t.slot(pid).CompareAndSwap(old, next)
}

// Store unconditionally installs a state (used during recovery and bulk
// load when no concurrent access exists).
func (t *Table[S]) Store(pid PID, s *S) {
	t.mu.Lock()
	t.ensureSegmentLocked(pid)
	if uint64(pid) >= t.next.Load() {
		t.next.Store(uint64(pid) + 1)
	}
	t.mu.Unlock()
	t.slot(pid).Store(s)
}

// MaxPID returns the highest PID ever allocated (0 when none).
func (t *Table[S]) MaxPID() PID {
	return PID(t.next.Load() - 1)
}

// Range calls fn for every PID with a non-nil state, stopping early if fn
// returns false. It observes a weakly consistent snapshot.
func (t *Table[S]) Range(fn func(PID, *S) bool) {
	segs := *t.segments.Load()
	for si, seg := range segs {
		if seg == nil {
			continue
		}
		for i := 0; i < segmentSize; i++ {
			pid := PID(uint64(si)<<segmentBits | uint64(i))
			if pid == NilPID {
				continue
			}
			if s := seg.slots[i].Load(); s != nil {
				if !fn(pid, s) {
					return
				}
			}
		}
	}
}
