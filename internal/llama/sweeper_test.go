package llama

import (
	"errors"
	"testing"
	"time"
)

func TestSweeperValidation(t *testing.T) {
	if _, err := NewSweeper(nil, time.Millisecond); err == nil {
		t.Fatal("nil manager accepted")
	}
	owner := newFakeOwner()
	m, _ := NewManager(Config{Owner: owner, Clock: fixedClock(0), Policy: PolicyNone})
	if _, err := NewSweeper(m, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSweeperRunsAndStops(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 10)
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100),
		Policy: PolicyBreakeven, BreakevenSeconds: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSweeper(m, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sw.Start()
	sw.Start() // double start is a no-op
	deadline := time.After(2 * time.Second)
	for m.Stats().Sweeps.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("sweeper never swept")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := sw.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Stop(); err != nil {
		t.Fatal("double stop errored")
	}
	// The cold page was evicted by the background loop.
	if owner.resident[1] {
		t.Fatal("cold page still resident")
	}
	// No more sweeps after stop.
	n := m.Stats().Sweeps.Value()
	time.Sleep(5 * time.Millisecond)
	if m.Stats().Sweeps.Value() != n {
		t.Fatal("sweeper kept running after Stop")
	}
}

func TestSweeperSurfacesOwnerError(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 10)
	owner.evictErr = errors.New("boom")
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100),
		Policy: PolicyBreakeven, BreakevenSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSweeper(m, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sw.Start()
	deadline := time.After(2 * time.Second)
	for sw.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("error never surfaced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := sw.Stop(); err == nil {
		t.Fatal("Stop did not report the loop error")
	}
}
