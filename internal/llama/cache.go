// Package llama provides the cache-management half of LLAMA (Levandoski,
// Lomet, Sengupta, PVLDB 2013): it decides which pages stay in main memory
// and which are evicted to the log-structured store.
//
// Three policies are provided, matching the paper's discussion:
//
//   - PolicyLRU: the classic approximation traditional caching systems use
//     (paper Section 6: "usually some approximation of LRU").
//   - PolicyBreakeven: the paper's contribution — evict a page when the
//     time since its last access exceeds the breakeven interval T_i of
//     Equation 6 (~45 s with the paper's constants). Below that rate the
//     page is cheaper on flash.
//   - PolicyNone: never evict (main-memory operation).
//
// The cache manager is policy plumbing only: the access method (the
// Bw-tree) owns page state and performs the actual flush/evict through the
// PageOwner interface.
package llama

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"costperf/internal/llama/mapping"
	"costperf/internal/metrics"
)

// Policy selects the eviction policy.
type Policy int

const (
	// PolicyNone never evicts.
	PolicyNone Policy = iota
	// PolicyLRU evicts least-recently-used pages when over budget.
	PolicyLRU
	// PolicyBreakeven evicts pages idle longer than the breakeven
	// interval T_i, regardless of budget, and falls back to LRU when the
	// budget is exceeded.
	PolicyBreakeven
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyLRU:
		return "lru"
	case PolicyBreakeven:
		return "breakeven"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PageOwner is implemented by the access method (the Bw-tree).
type PageOwner interface {
	// EvictPage removes the page's base from memory; retainDeltas keeps
	// recent deltas as a record cache.
	EvictPage(pid mapping.PID, retainDeltas bool) error
	// PageResident reports whether the page's base is in memory.
	PageResident(pid mapping.PID) bool
	// LastAccess returns the virtual time of the page's last access.
	LastAccess(pid mapping.PID) float64
	// Pages lists all evictable (leaf) pages.
	Pages() []mapping.PID
}

// Clock yields the current virtual time in seconds.
type Clock interface {
	Now() float64
}

// Config configures a cache Manager.
type Config struct {
	// Owner is the access method managing page state.
	Owner PageOwner
	// Clock provides virtual time.
	Clock Clock
	// Policy selects eviction behaviour.
	Policy Policy
	// BreakevenSeconds is T_i for PolicyBreakeven (e.g. from
	// core.Costs.BreakevenInterval()).
	BreakevenSeconds float64
	// BudgetBytes caps resident page memory for PolicyLRU (and the
	// fallback of PolicyBreakeven). 0 = unlimited.
	BudgetBytes int64
	// RetainDeltas keeps delta chains in memory on eviction (the record
	// cache of paper Section 6.3).
	RetainDeltas bool
	// FootprintFn returns the owner's current memory footprint, used to
	// enforce BudgetBytes.
	FootprintFn func() int64
}

// Stats counts cache-manager events.
type Stats struct {
	Sweeps            metrics.Counter
	BreakevenEvicts   metrics.Counter
	BudgetEvicts      metrics.Counter
	CandidatesSkipped metrics.Counter
}

// Manager applies an eviction policy over an owner's pages.
type Manager struct {
	cfg   Config
	mu    sync.Mutex
	stats Stats
}

// NewManager validates cfg and returns a Manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Owner == nil {
		return nil, errors.New("llama: nil Owner")
	}
	if cfg.Clock == nil {
		return nil, errors.New("llama: nil Clock")
	}
	if cfg.Policy == PolicyBreakeven && cfg.BreakevenSeconds <= 0 {
		return nil, errors.New("llama: PolicyBreakeven requires BreakevenSeconds > 0")
	}
	if cfg.BudgetBytes > 0 && cfg.FootprintFn == nil {
		return nil, errors.New("llama: BudgetBytes requires FootprintFn")
	}
	return &Manager{cfg: cfg}, nil
}

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Sweep runs one eviction pass and returns the number of pages evicted.
// Call it periodically (the experiment harness calls it between workload
// phases; a production system would run it on a timer).
func (m *Manager) Sweep() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Sweeps.Inc()
	if m.cfg.Policy == PolicyNone {
		return 0, nil
	}
	now := m.cfg.Clock.Now()
	evicted := 0

	type cand struct {
		pid  mapping.PID
		last float64
	}
	var cands []cand
	for _, pid := range m.cfg.Owner.Pages() {
		if !m.cfg.Owner.PageResident(pid) {
			m.stats.CandidatesSkipped.Inc()
			continue
		}
		cands = append(cands, cand{pid, m.cfg.Owner.LastAccess(pid)})
	}

	// Breakeven rule: any page idle longer than T_i is cheaper on flash.
	if m.cfg.Policy == PolicyBreakeven {
		for _, c := range cands {
			if now-c.last > m.cfg.BreakevenSeconds {
				if err := m.cfg.Owner.EvictPage(c.pid, m.cfg.RetainDeltas); err != nil {
					return evicted, err
				}
				m.stats.BreakevenEvicts.Inc()
				evicted++
			}
		}
	}

	// Budget enforcement: evict coldest-first until under budget.
	if m.cfg.BudgetBytes > 0 && m.cfg.FootprintFn() > m.cfg.BudgetBytes {
		sort.Slice(cands, func(i, j int) bool { return cands[i].last < cands[j].last })
		for _, c := range cands {
			if m.cfg.FootprintFn() <= m.cfg.BudgetBytes {
				break
			}
			if !m.cfg.Owner.PageResident(c.pid) {
				continue // already evicted by the breakeven pass
			}
			if err := m.cfg.Owner.EvictPage(c.pid, m.cfg.RetainDeltas); err != nil {
				return evicted, err
			}
			m.stats.BudgetEvicts.Inc()
			evicted++
		}
	}
	return evicted, nil
}
