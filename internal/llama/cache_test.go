package llama

import (
	"errors"
	"testing"

	"costperf/internal/llama/mapping"
)

// fakeOwner is a PageOwner backed by plain maps.
type fakeOwner struct {
	pages    []mapping.PID
	resident map[mapping.PID]bool
	last     map[mapping.PID]float64
	size     map[mapping.PID]int64
	evictErr error
	evicts   []mapping.PID
	retained []bool
}

func newFakeOwner() *fakeOwner {
	return &fakeOwner{
		resident: map[mapping.PID]bool{},
		last:     map[mapping.PID]float64{},
		size:     map[mapping.PID]int64{},
	}
}

func (f *fakeOwner) add(pid mapping.PID, last float64, size int64) {
	f.pages = append(f.pages, pid)
	f.resident[pid] = true
	f.last[pid] = last
	f.size[pid] = size
}

func (f *fakeOwner) EvictPage(pid mapping.PID, retain bool) error {
	if f.evictErr != nil {
		return f.evictErr
	}
	f.resident[pid] = false
	f.evicts = append(f.evicts, pid)
	f.retained = append(f.retained, retain)
	return nil
}
func (f *fakeOwner) PageResident(pid mapping.PID) bool  { return f.resident[pid] }
func (f *fakeOwner) LastAccess(pid mapping.PID) float64 { return f.last[pid] }
func (f *fakeOwner) Pages() []mapping.PID               { return f.pages }
func (f *fakeOwner) footprint() int64 {
	var n int64
	for pid, r := range f.resident {
		if r {
			n += f.size[pid]
		}
	}
	return n
}

type fixedClock float64

func (c fixedClock) Now() float64 { return float64(c) }

func TestPolicyString(t *testing.T) {
	if PolicyNone.String() != "none" || PolicyLRU.String() != "lru" || PolicyBreakeven.String() != "breakeven" {
		t.Fatal("policy strings")
	}
}

func TestConfigValidation(t *testing.T) {
	owner := newFakeOwner()
	cases := []Config{
		{Clock: fixedClock(0)}, // nil owner
		{Owner: owner},         // nil clock
		{Owner: owner, Clock: fixedClock(0), Policy: PolicyBreakeven},            // no T_i
		{Owner: owner, Clock: fixedClock(0), Policy: PolicyLRU, BudgetBytes: 10}, // no footprint fn
	}
	for i, cfg := range cases {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPolicyNoneNeverEvicts(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 100)
	m, err := NewManager(Config{Owner: owner, Clock: fixedClock(1000), Policy: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Sweep()
	if err != nil || n != 0 {
		t.Fatalf("sweep = %d, %v", n, err)
	}
}

func TestBreakevenEvictsOnlyColdPages(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 100, 10) // idle 50s at now=150
	owner.add(2, 140, 10) // idle 10s
	owner.add(3, 10, 10)  // idle 140s
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(150),
		Policy: PolicyBreakeven, BreakevenSeconds: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("evicted %d, want 2 (pages idle > 45 s)", n)
	}
	if owner.resident[1] || owner.resident[3] {
		t.Fatal("cold pages should be evicted")
	}
	if !owner.resident[2] {
		t.Fatal("hot page should stay")
	}
	if m.Stats().BreakevenEvicts.Value() != 2 {
		t.Fatal("breakeven evicts not counted")
	}
}

func TestLRUBudgetEvictsColdestFirst(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 10, 100)
	owner.add(2, 20, 100)
	owner.add(3, 30, 100)
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyLRU,
		BudgetBytes: 150, FootprintFn: owner.footprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("evicted %d, want 2 to get under 150 bytes", n)
	}
	if owner.evicts[0] != 1 || owner.evicts[1] != 2 {
		t.Fatalf("eviction order = %v, want coldest first [1 2]", owner.evicts)
	}
	if !owner.resident[3] {
		t.Fatal("hottest page evicted")
	}
}

func TestLRUUnderBudgetNoEvicts(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 10, 50)
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyLRU,
		BudgetBytes: 100, FootprintFn: owner.footprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Sweep(); n != 0 {
		t.Fatalf("evicted %d under budget", n)
	}
}

func TestBreakevenPlusBudget(t *testing.T) {
	// Breakeven pass evicts the very cold page; budget pass evicts more.
	owner := newFakeOwner()
	owner.add(1, 0, 100)  // idle 100s -> breakeven evict
	owner.add(2, 90, 100) // idle 10s
	owner.add(3, 95, 100) // idle 5s
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyBreakeven,
		BreakevenSeconds: 45, BudgetBytes: 100, FootprintFn: owner.footprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("evicted %d, want 2 (1 breakeven + 1 budget)", n)
	}
	if m.Stats().BreakevenEvicts.Value() != 1 || m.Stats().BudgetEvicts.Value() != 1 {
		t.Fatalf("evict breakdown wrong: %d breakeven, %d budget",
			m.Stats().BreakevenEvicts.Value(), m.Stats().BudgetEvicts.Value())
	}
	if !owner.resident[3] {
		t.Fatal("hottest page evicted")
	}
}

func TestRetainDeltasPropagated(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 10)
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyBreakeven,
		BreakevenSeconds: 45, RetainDeltas: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	if len(owner.retained) != 1 || !owner.retained[0] {
		t.Fatal("retainDeltas not propagated to owner")
	}
}

func TestSweepPropagatesOwnerError(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 10)
	owner.evictErr = errors.New("boom")
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyBreakeven, BreakevenSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sweep(); err == nil {
		t.Fatal("owner error swallowed")
	}
}

func TestNonResidentSkipped(t *testing.T) {
	owner := newFakeOwner()
	owner.add(1, 0, 10)
	owner.resident[1] = false
	m, err := NewManager(Config{
		Owner: owner, Clock: fixedClock(100), Policy: PolicyBreakeven, BreakevenSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Sweep(); n != 0 {
		t.Fatalf("evicted non-resident page")
	}
	if m.Stats().CandidatesSkipped.Value() != 1 {
		t.Fatal("skip not counted")
	}
}
