// Package logstore implements LLAMA's log-structured secondary storage
// (paper Section 6.1): page states are accumulated into very large write
// buffers and written to flash in a single I/O, dramatically reducing the
// number of writes. Pages are variable size — only the bytes a page
// actually uses are written — and a previously flushed base page can be
// represented by delta-only increments (the caller chooses what to append).
//
// The log is divided into fixed-size segments for garbage collection:
// superseded records are invalidated, and GC relocates the remaining live
// records of the lowest-utilization segment before trimming it (paper
// Section 6.1's GC trade-off discussion).
package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// Kind tags the content of a log record.
type Kind uint8

const (
	// KindBase is a full (consolidated) page image.
	KindBase Kind = 1
	// KindDelta is an incremental page update (paper Figure 5).
	KindDelta Kind = 2
	// KindPad fills the unused tail of a segment so records never span
	// segment boundaries.
	KindPad Kind = 3
)

// Address locates a record in the log. The zero Address is "none".
type Address struct {
	// Off is the byte offset of the record header in the log, plus 1 so
	// that the zero value is invalid.
	Off int64
	// Len is the payload length in bytes.
	Len int32
}

// IsNil reports whether the address is the zero "none" value.
func (a Address) IsNil() bool { return a.Off == 0 }

func (a Address) offset() int64 { return a.Off - 1 }

// String renders the address for logs.
func (a Address) String() string {
	if a.IsNil() {
		return "addr(nil)"
	}
	return fmt.Sprintf("addr(%d,%d)", a.offset(), a.Len)
}

// Record is a decoded log record.
type Record struct {
	PID     uint64
	Kind    Kind
	Payload []byte
}

const (
	magic      = 0xD7 // first header byte of every record
	headerSize = 1 + 1 + 8 + 4 + 4
)

// Common errors.
var (
	ErrBadAddress = errors.New("logstore: invalid address")
	// ErrCorrupt wraps fault.ErrCorrupt so fault.Classify sees store-level
	// checksum failures uniformly.
	ErrCorrupt  = fmt.Errorf("logstore: corrupt record (%w)", fault.ErrCorrupt)
	ErrTooLarge = errors.New("logstore: record exceeds segment size")
	ErrClosed   = errors.New("logstore: closed")
	// ErrDegraded is returned by writes after a persistent device write
	// failure latched the store read-only (see Stats.Health).
	ErrDegraded = errors.New("logstore: store degraded (read-only)")
)

// Config configures a Store.
type Config struct {
	// Device is the backing secondary-storage device — a plain *ssd.Device
	// or an *ssd.Mirror for checksum-verified, self-healing storage.
	Device ssd.Dev
	// BufferBytes is the write-buffer size; one device write per buffer
	// (paper: "writes very large buffers containing a large number of
	// pages ... in a single write"). Default 1 MiB.
	BufferBytes int
	// SegmentBytes is the GC granularity. Must be a multiple of
	// BufferBytes. Default 4 MiB.
	SegmentBytes int64
	// Retry bounds the backoff loop around device I/O; the zero value
	// takes fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Obs, when non-nil, receives one tracing span per append/read/flush;
	// reads served by the device (not the write buffer) and appends that
	// trigger a synchronous flush are marked as misses. Nil traces
	// nothing at zero cost.
	Obs *obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Device == nil {
		return errors.New("logstore: nil device")
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 1 << 20
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.BufferBytes < headerSize+1 {
		return fmt.Errorf("logstore: buffer %d too small", c.BufferBytes)
	}
	if c.SegmentBytes%int64(c.BufferBytes) != 0 {
		return fmt.Errorf("logstore: segment %d not a multiple of buffer %d", c.SegmentBytes, c.BufferBytes)
	}
	return nil
}

type segInfo struct {
	liveBytes  int64
	totalBytes int64
}

// Stats reports store-level counters beyond the device's I/O stats.
type Stats struct {
	RecordsAppended metrics.Counter
	BytesAppended   metrics.Counter
	Flushes         metrics.Counter
	GCRuns          metrics.Counter
	GCReclaimed     metrics.Counter
	GCRelocated     metrics.Counter
	BufferHits      metrics.Counter // reads served from the unflushed buffer
	// Retry meters the transient-fault retry budget spent on device I/O.
	Retry metrics.RetryStats
	// Health latches degraded (read-only) after a persistent write failure.
	Health metrics.Health
}

// Store is a log-structured record store. It is safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	buf      []byte
	bufStart int64 // log offset of buf[0]
	closed   bool
	segs     map[int64]*segInfo

	stats Stats
}

// Open creates a store over an empty device region or re-opens an existing
// log (recovery scans it to find the tail and rebuild segment accounting).
func Open(cfg Config) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:  cfg,
		buf:  make([]byte, 0, cfg.BufferBytes),
		segs: make(map[int64]*segInfo),
	}
	// A self-healing device (ssd.Mirror) escalates unrecoverable dual-leg
	// corruption by latching every attached health read-only.
	if ha, ok := cfg.Device.(interface {
		AttachHealth(*metrics.Health)
	}); ok {
		ha.AttachHealth(&s.stats.Health)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover scans the device to find the log tail. Live-bytes accounting is
// initialized assuming every scanned record is live; the owner invalidates
// superseded records as it rebuilds its mapping.
func (s *Store) recover() error {
	tail := int64(0)
	err := s.scanDevice(func(rec Record, addr Address, recLen int64) bool {
		if rec.Kind != KindPad {
			s.accountAppend(addr.offset(), recLen)
		}
		tail = addr.offset() + recLen
		return true
	})
	if err != nil {
		return err
	}
	s.bufStart = tail
	return nil
}

func (s *Store) segIndex(off int64) int64 { return off / s.cfg.SegmentBytes }

func (s *Store) accountAppend(off, length int64) {
	si := s.segIndex(off)
	info := s.segs[si]
	if info == nil {
		info = &segInfo{}
		s.segs[si] = info
	}
	info.liveBytes += length
	info.totalBytes += length
}

// Stats returns the store's counters.
func (s *Store) Stats() *Stats { return &s.stats }

// Tail returns the current end-of-log offset (including buffered data).
func (s *Store) Tail() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufStart + int64(len(s.buf))
}

// encodeHeader frames a record. The checksum covers the header prefix as
// well as the payload: a zero-length payload checksums to 0, so a
// payload-only CRC would let a torn header (zero-filled length and CRC
// fields) masquerade as a valid empty record during recovery.
func encodeHeader(dst []byte, kind Kind, pid uint64, payload []byte) {
	dst[0] = magic
	dst[1] = byte(kind)
	binary.BigEndian.PutUint64(dst[2:], pid)
	binary.BigEndian.PutUint32(dst[10:], uint32(len(payload)))
	sum := crc32.ChecksumIEEE(dst[:14])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(dst[14:], sum)
}

// Append adds a record to the log and returns its address. The record
// becomes durable at the next buffer flush; it is readable immediately.
// A nil charger skips CPU accounting.
func (s *Store) Append(pid uint64, kind Kind, payload []byte, ch *sim.Charger) (_ Address, err error) {
	sp := s.cfg.Obs.Start(obs.OpPut)
	defer func() { sp.End(err) }()
	if kind != KindBase && kind != KindDelta {
		return Address{}, fmt.Errorf("logstore: cannot append kind %d", kind)
	}
	recLen := int64(headerSize + len(payload))
	if recLen > s.cfg.SegmentBytes {
		return Address{}, ErrTooLarge
	}
	if err := ch.Err(); err != nil {
		return Address{}, err // cancelled before any state changed
	}
	if ch != nil {
		ch.Copy(len(payload)) // staging the payload into the write buffer
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Address{}, ErrClosed
	}
	if s.stats.Health.Degraded() {
		return Address{}, ErrDegraded
	}
	// Keep records inside one segment: pad to the boundary if needed.
	off := s.bufStart + int64(len(s.buf))
	segEnd := (s.segIndex(off) + 1) * s.cfg.SegmentBytes
	if off+recLen > segEnd {
		sp.Miss() // segment padding may flush the buffer to the device
		if err := s.padToLocked(segEnd, ch); err != nil {
			return Address{}, err
		}
		off = s.bufStart + int64(len(s.buf))
	}
	// Flush if the buffer cannot hold the record.
	if int64(len(s.buf))+recLen > int64(s.cfg.BufferBytes) {
		sp.Miss() // this append pays for the synchronous buffer flush
		if err := s.flushLocked(ch); err != nil {
			return Address{}, err
		}
		off = s.bufStart
	}
	var hdr [headerSize]byte
	encodeHeader(hdr[:], kind, pid, payload)
	s.buf = append(s.buf, hdr[:]...)
	s.buf = append(s.buf, payload...)
	s.accountAppend(off, recLen)
	s.stats.RecordsAppended.Inc()
	s.stats.BytesAppended.Add(recLen)
	return Address{Off: off + 1, Len: int32(len(payload))}, nil
}

// padToLocked appends a pad record so the next record starts at target.
// Caller holds s.mu.
func (s *Store) padToLocked(target int64, ch *sim.Charger) error {
	off := s.bufStart + int64(len(s.buf))
	gap := target - off
	if gap == 0 {
		return nil
	}
	if gap < headerSize {
		// Too small to frame a pad record: raw zero fill. The recovery
		// scan resynchronizes at segment boundaries, so unframed zeros at
		// a segment tail are skipped safely.
		s.buf = append(s.buf, make([]byte, gap)...)
	} else {
		payload := make([]byte, gap-headerSize)
		var hdr [headerSize]byte
		encodeHeader(hdr[:], KindPad, 0, payload)
		s.buf = append(s.buf, hdr[:]...)
		s.buf = append(s.buf, payload...)
	}
	if int64(len(s.buf)) >= int64(s.cfg.BufferBytes) {
		return s.flushLocked(ch)
	}
	return nil
}

// Flush writes the buffered records to the device in a single large write.
// The charger's context (if any) bounds the flush: a cancelled request
// aborts the device write and the retry backoff, leaving the buffer intact
// for the next flush attempt.
func (s *Store) Flush(ch *sim.Charger) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked(ch)
}

func (s *Store) flushLocked(ch *sim.Charger) (err error) {
	if len(s.buf) == 0 {
		return nil
	}
	sp := s.cfg.Obs.Start(obs.OpFlush)
	sp.Miss() // a flush is by definition a device write
	defer func() { sp.End(err) }()
	if s.stats.Health.Degraded() {
		return ErrDegraded
	}
	// A retried flush rewrites the whole buffer at the same offset, so a
	// torn first attempt is simply overwritten. The flush cost stays
	// charged to the device (nil-charger policy); only the caller's
	// cancellation is carried down via a detached charger. An aborted
	// flush is not a store failure: the buffer survives for the next try.
	dch := sim.DetachedCharger(ch.Context())
	err = s.cfg.Retry.DoCtx(ch.Context(), &s.stats.Retry, func() error {
		return s.cfg.Device.WriteAt(s.bufStart, s.buf, dch)
	})
	if err != nil {
		if fault.Classify(err) == fault.ClassPersistent {
			s.stats.Health.Degrade(fmt.Sprintf("flush at %d: %v", s.bufStart, err))
		}
		return err
	}
	s.stats.Flushes.Inc()
	s.bufStart += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// Read fetches the record at addr. Reads of still-buffered records are
// served from memory without I/O (and without escalating the operation to
// SS class).
func (s *Store) Read(addr Address, ch *sim.Charger) (_ Record, err error) {
	sp := s.cfg.Obs.Start(obs.OpGet)
	defer func() { sp.End(err) }()
	if addr.IsNil() || addr.Len < 0 {
		return Record{}, ErrBadAddress
	}
	if err := ch.Err(); err != nil {
		return Record{}, err // cancelled: skip the I/O entirely
	}
	off := addr.offset()
	total := headerSize + int(addr.Len)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Record{}, ErrClosed
	}
	if off >= s.bufStart {
		// Serve from the write buffer.
		rel := off - s.bufStart
		if rel+int64(total) > int64(len(s.buf)) {
			s.mu.Unlock()
			return Record{}, ErrBadAddress
		}
		raw := make([]byte, total)
		copy(raw, s.buf[rel:rel+int64(total)])
		s.mu.Unlock()
		s.stats.BufferHits.Inc()
		if ch != nil {
			ch.Copy(total)
		}
		return decode(raw, addr.Len)
	}
	s.mu.Unlock()

	sp.Miss() // past the buffered tail: served by the device
	raw, err := s.cfg.Device.ReadAt(off, total, ch)
	if err != nil {
		return Record{}, err
	}
	if ch != nil {
		ch.Add(ch.Profile().PageDeserialize)
	}
	rec, err := decode(raw, addr.Len)
	if err != nil {
		// The device transfer succeeded but the payload is garbage: the
		// read must count as a failed physical attempt, not a logical one,
		// or a retry/repair re-read would inflate the logical count.
		s.cfg.Device.Stats().ReclassifyRead()
		return Record{}, err
	}
	return rec, nil
}

func decode(raw []byte, wantLen int32) (Record, error) {
	if len(raw) < headerSize || raw[0] != magic {
		return Record{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	kind := Kind(raw[1])
	pid := binary.BigEndian.Uint64(raw[2:])
	plen := binary.BigEndian.Uint32(raw[10:])
	sum := binary.BigEndian.Uint32(raw[14:])
	if int32(plen) != wantLen || headerSize+int(plen) > len(raw) {
		return Record{}, fmt.Errorf("%w: length mismatch", ErrCorrupt)
	}
	payload := raw[headerSize : headerSize+int(plen)]
	want := crc32.ChecksumIEEE(raw[:14])
	want = crc32.Update(want, crc32.IEEETable, payload)
	if want != sum {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return Record{PID: pid, Kind: kind, Payload: payload}, nil
}

// Invalidate marks the record at addr as superseded, reducing its
// segment's live-byte count so GC can reclaim it.
func (s *Store) Invalidate(addr Address) {
	if addr.IsNil() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if info := s.segs[s.segIndex(addr.offset())]; info != nil {
		info.liveBytes -= headerSize + int64(addr.Len)
		if info.liveBytes < 0 {
			info.liveBytes = 0
		}
	}
}

// Utilization returns live bytes / total bytes across sealed segments
// (1.0 when the log is empty).
func (s *Store) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var live, total int64
	activeSeg := s.segIndex(s.bufStart + int64(len(s.buf)))
	for si, info := range s.segs {
		if si == activeSeg {
			continue
		}
		live += info.liveBytes
		total += info.totalBytes
	}
	if total == 0 {
		return 1
	}
	return float64(live) / float64(total)
}

// scanDevice iterates all framed records on the device (not the buffer),
// in log order. Because records never span segment boundaries, the scan
// resynchronizes at the next segment after an invalid frame — a hole left
// by garbage collection (trimmed segment) or a torn write — and stops
// only at the device's high-water mark. fn gets the record, its address,
// and its framed length.
func (s *Store) scanDevice(fn func(rec Record, addr Address, recLen int64) bool) error {
	off := int64(0)
	hw := s.cfg.Device.HighWater()
	nextSegment := func(o int64) int64 {
		return (s.segIndex(o) + 1) * s.cfg.SegmentBytes
	}
	for off+headerSize <= hw {
		var hdr []byte
		err := s.cfg.Retry.Do(&s.stats.Retry, func() error {
			var rerr error
			hdr, rerr = s.cfg.Device.ReadAt(off, headerSize, nil)
			return rerr
		})
		if err != nil {
			return err
		}
		if hdr[0] != magic {
			off = nextSegment(off) // GC hole or tail padding: resync
			continue
		}
		plen := int64(binary.BigEndian.Uint32(hdr[10:]))
		if off+headerSize+plen > hw {
			return nil // torn tail record
		}
		var raw []byte
		err = s.cfg.Retry.Do(&s.stats.Retry, func() error {
			var rerr error
			raw, rerr = s.cfg.Device.ReadAt(off, headerSize+int(plen), nil)
			return rerr
		})
		if err != nil {
			return err
		}
		rec, err := decode(raw, int32(plen))
		if err != nil {
			off = nextSegment(off) // torn write: resync at the next segment
			continue
		}
		if !fn(rec, Address{Off: off + 1, Len: int32(plen)}, headerSize+plen) {
			return nil
		}
		off += headerSize + plen
	}
	return nil
}

// Scan iterates every non-pad record on durable storage in log order,
// for recovery. The payload passed to fn is only valid during the call.
func (s *Store) Scan(fn func(rec Record, addr Address) bool) error {
	return s.scanDevice(func(rec Record, addr Address, _ int64) bool {
		if rec.Kind == KindPad {
			return true
		}
		return fn(rec, addr)
	})
}

// CollectSegment runs one garbage-collection pass over the coldest sealed
// segment: every framed record is offered to relocate, which returns true
// if the record is still live (the owner is responsible for re-appending
// it and updating its mapping before returning). The segment is then
// trimmed. It returns the bytes reclaimed, or (0, nil) when no sealed
// segment exists.
//
// The paper notes GC can be delayed under load to save cycles and improve
// reclaimed-bytes-per-segment; the caller owns that policy and simply
// calls CollectSegment when it chooses to collect.
func (s *Store) CollectSegment(relocate func(rec Record, old Address) bool, ch *sim.Charger) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	// Victim: sealed segment with the lowest utilization. Iterate in
	// sorted order for determinism.
	activeSeg := s.segIndex(s.bufStart + int64(len(s.buf)))
	flushedEnd := s.bufStart
	var victims []int64
	for si := range s.segs {
		if si != activeSeg && (si+1)*s.cfg.SegmentBytes <= flushedEnd {
			victims = append(victims, si)
		}
	}
	if len(victims) == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	sort.Slice(victims, func(i, j int) bool {
		a, b := s.segs[victims[i]], s.segs[victims[j]]
		ra := float64(a.liveBytes) / float64(a.totalBytes+1)
		rb := float64(b.liveBytes) / float64(b.totalBytes+1)
		if ra != rb {
			return ra < rb
		}
		return victims[i] < victims[j]
	})
	victim := victims[0]
	total := s.segs[victim].totalBytes
	s.mu.Unlock()

	// Read the whole segment in one large I/O and offer records.
	segOff := victim * s.cfg.SegmentBytes
	segLen := s.cfg.SegmentBytes
	if hw := s.cfg.Device.HighWater(); segOff+segLen > hw {
		segLen = hw - segOff
	}
	var raw []byte
	err := s.cfg.Retry.Do(&s.stats.Retry, func() error {
		var rerr error
		raw, rerr = s.cfg.Device.ReadAt(segOff, int(segLen), nil)
		return rerr
	})
	if err != nil {
		return 0, err
	}
	relocated := int64(0)
	off := int64(0)
	for off+headerSize <= segLen {
		if raw[off] != magic {
			break
		}
		plen := int64(binary.BigEndian.Uint32(raw[off+10:]))
		if off+headerSize+plen > segLen {
			break
		}
		rec, err := decode(raw[off:off+headerSize+plen], int32(plen))
		if err != nil {
			break
		}
		if rec.Kind != KindPad {
			// Copy payload: raw is reused after trim.
			p := make([]byte, len(rec.Payload))
			copy(p, rec.Payload)
			rec.Payload = p
			if relocate(rec, Address{Off: segOff + off + 1, Len: int32(plen)}) {
				relocated += headerSize + plen
			}
		}
		off += headerSize + plen
	}
	if ch != nil {
		ch.Copy(int(relocated))
	}

	if err := s.cfg.Device.Trim(segOff, s.cfg.SegmentBytes); err != nil {
		return 0, fmt.Errorf("logstore: trim segment %d: %w", victim, err)
	}
	s.cfg.Device.Stats().GCReclaimed.Add(total - relocated)
	s.cfg.Device.Stats().GCWrites.Add(relocated)

	s.mu.Lock()
	delete(s.segs, victim)
	s.mu.Unlock()
	s.stats.GCRuns.Inc()
	s.stats.GCReclaimed.Add(total - relocated)
	s.stats.GCRelocated.Add(relocated)
	return total - relocated, nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.flushLocked(nil); err != nil {
		return err
	}
	s.closed = true
	return nil
}
