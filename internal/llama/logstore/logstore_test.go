package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/sim"
	"costperf/internal/ssd"
)

func newStore(t *testing.T) (*Store, *ssd.Device) {
	t.Helper()
	dev := ssd.New(ssd.SamsungSSD)
	s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestAppendReadFromBuffer(t *testing.T) {
	s, dev := newStore(t)
	payload := []byte("page one contents")
	addr, err := s.Append(7, KindBase, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Read(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PID != 7 || rec.Kind != KindBase || !bytes.Equal(rec.Payload, payload) {
		t.Fatalf("rec = %+v", rec)
	}
	// Unflushed: no device I/O should have occurred.
	if dev.Stats().Reads.Value() != 0 || dev.Stats().Writes.Value() != 0 {
		t.Fatal("buffered read/write should not touch the device")
	}
	if s.Stats().BufferHits.Value() != 1 {
		t.Fatal("buffer hit not counted")
	}
}

func TestReadAfterFlushHitsDevice(t *testing.T) {
	s, dev := newStore(t)
	addr, err := s.Append(1, KindDelta, []byte("delta"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes.Value() != 1 {
		t.Fatalf("writes = %d, want 1 (single large buffer write)", dev.Stats().Writes.Value())
	}
	rec, err := s.Read(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Payload, []byte("delta")) {
		t.Fatal("payload mismatch")
	}
	if dev.Stats().Reads.Value() != 1 {
		t.Fatalf("reads = %d, want 1", dev.Stats().Reads.Value())
	}
}

func TestLargeWriteBuffersReduceWriteIO(t *testing.T) {
	// The headline of paper Section 6.1: many page writes, few device writes.
	dev := ssd.New(ssd.SamsungSSD)
	s, err := Open(Config{Device: dev, BufferBytes: 1 << 16, SegmentBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	const pages = 500
	payload := make([]byte, 100)
	for i := 0; i < pages; i++ {
		if _, err := s.Append(uint64(i), KindBase, payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	w := dev.Stats().Writes.Value()
	if w >= pages/10 {
		t.Fatalf("device writes = %d for %d page appends; log-structuring should batch far more", w, pages)
	}
}

func TestChargerClassification(t *testing.T) {
	s, _ := newStore(t)
	sess := sim.NewSession(sim.DefaultCosts())

	addr, err := s.Append(3, KindBase, []byte("abc"), sess.Begin())
	if err != nil {
		t.Fatal(err)
	}
	// Buffered read stays an MM operation.
	ch := sess.Begin()
	if _, err := s.Read(addr, ch); err != nil {
		t.Fatal(err)
	}
	if ch.Class() != sim.OpMM {
		t.Fatalf("buffered read class = %v, want MM", ch.Class())
	}
	ch.Abandon()

	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	ch2 := sess.Begin()
	if _, err := s.Read(addr, ch2); err != nil {
		t.Fatal(err)
	}
	if ch2.Class() != sim.OpSS {
		t.Fatalf("device read class = %v, want SS", ch2.Class())
	}
	if ch2.Cost() <= ch.Cost() {
		t.Fatal("device read must cost more than buffered read")
	}
}

func TestBadAppendKind(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Append(1, KindPad, nil, nil); err == nil {
		t.Fatal("appending pad kind should fail")
	}
}

func TestTooLargeRecord(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Append(1, KindBase, make([]byte, 1<<20), nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBadAddressRead(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Read(Address{}, nil); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("nil addr err = %v", err)
	}
	if _, err := s.Read(Address{Off: 5000, Len: 10}, nil); err == nil {
		t.Fatal("read past tail should fail")
	}
}

func TestCorruptionDetected(t *testing.T) {
	s, dev := newStore(t)
	addr, _ := s.Append(1, KindBase, []byte("precious"), nil)
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on the device.
	raw, err := dev.ReadAt(addr.Off-1, headerSize+int(addr.Len), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize] ^= 0xff
	if err := dev.WriteAt(addr.Off-1, raw, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(addr, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRecordsNeverSpanSegments(t *testing.T) {
	s, _ := newStore(t) // segment = 16384
	payload := make([]byte, 3000)
	var addrs []Address
	for i := 0; i < 40; i++ {
		a, err := s.Append(uint64(i), KindBase, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		start := a.Off - 1
		end := start + headerSize + int64(a.Len)
		if start/16384 != (end-1)/16384 {
			t.Fatalf("record %v spans segments", a)
		}
	}
	// All records must read back after flush.
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		rec, err := s.Read(a, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if rec.PID != uint64(i) {
			t.Fatalf("pid = %d, want %d", rec.PID, i)
		}
	}
}

func TestScanRecovery(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatal(err)
	}
	type item struct {
		pid     uint64
		payload string
	}
	items := []item{{1, "one"}, {2, "two"}, {3, "three"}, {1, "one-v2"}}
	for _, it := range items {
		if _, err := s.Append(it.pid, KindBase, []byte(it.payload), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen over the same device.
	s2, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatal(err)
	}
	var got []item
	if err := s2.Scan(func(rec Record, addr Address) bool {
		got = append(got, item{rec.PID, string(rec.Payload)})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("recovered %d records, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], items[i])
		}
	}
	// New appends after recovery go after the old tail.
	addr, err := s2.Append(9, KindDelta, []byte("post-recovery"), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Read(addr, nil)
	if err != nil || !bytes.Equal(rec.Payload, []byte("post-recovery")) {
		t.Fatalf("post-recovery read: %v %+v", err, rec)
	}
}

func TestTornTailIgnoredOnRecovery(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	s, _ := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if _, err := s.Append(1, KindBase, []byte("good"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: a header claiming more bytes than exist.
	tail := s.Tail()
	var hdr [headerSize]byte
	encodeHeader(hdr[:], KindBase, 2, make([]byte, 500))
	if err := dev.WriteAt(tail, hdr[:], nil); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := s2.Scan(func(Record, Address) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d records, want 1 (torn tail dropped)", n)
	}
}

func TestInvalidateAndUtilization(t *testing.T) {
	s, _ := newStore(t)
	payload := make([]byte, 2000)
	var addrs []Address
	// Fill several segments.
	for i := 0; i < 30; i++ {
		a, err := s.Append(uint64(i), KindBase, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	before := s.Utilization()
	for _, a := range addrs[:15] {
		s.Invalidate(a)
	}
	after := s.Utilization()
	if after >= before {
		t.Fatalf("utilization %v -> %v, want decrease", before, after)
	}
}

func TestCollectSegmentRelocatesLiveOnly(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1500)
	live := map[uint64]Address{}
	// Fill multiple segments; invalidate even PIDs.
	for i := 0; i < 20; i++ {
		a, err := s.Append(uint64(i), KindBase, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		live[uint64(i)] = a
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for pid, a := range live {
		if pid%2 == 0 {
			s.Invalidate(a)
			delete(live, pid)
		}
	}
	relocated := map[uint64]bool{}
	reclaimed, err := s.CollectSegment(func(rec Record, old Address) bool {
		cur, ok := live[rec.PID]
		if !ok || cur != old {
			return false // dead record
		}
		na, err := s.Append(rec.PID, rec.Kind, rec.Payload, nil)
		if err != nil {
			t.Fatalf("relocate append: %v", err)
		}
		live[rec.PID] = na
		relocated[rec.PID] = true
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatal("GC reclaimed nothing")
	}
	for pid := range relocated {
		if pid%2 == 0 {
			t.Fatalf("dead pid %d relocated", pid)
		}
	}
	// Every live record must still read back correctly.
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for pid, a := range live {
		rec, err := s.Read(a, nil)
		if err != nil {
			t.Fatalf("read live pid %d: %v", pid, err)
		}
		if rec.PID != pid {
			t.Fatalf("pid mismatch %d != %d", rec.PID, pid)
		}
	}
	if s.Stats().GCRuns.Value() != 1 {
		t.Fatal("GC run not counted")
	}
}

func TestCollectSegmentNoSealedSegments(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Append(1, KindBase, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := s.CollectSegment(func(Record, Address) bool { return true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 {
		t.Fatalf("reclaimed %d from active segment", reclaimed)
	}
}

func TestDelayedGCReclaimsMorePerRun(t *testing.T) {
	// Paper Section 6.1: delaying GC increases reclaimed space per segment.
	run := func(invalidations int) int64 {
		dev := ssd.New(ssd.SamsungSSD)
		s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 8192})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 1500)
		live := map[Address]bool{}
		var addrs []Address
		for i := 0; i < 10; i++ {
			a, _ := s.Append(uint64(i), KindBase, payload, nil)
			addrs = append(addrs, a)
			live[a] = true
		}
		if err := s.Flush(nil); err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs[:invalidations] {
			s.Invalidate(a)
			delete(live, a)
		}
		reclaimed, err := s.CollectSegment(func(rec Record, old Address) bool {
			if !live[old] {
				return false
			}
			if _, err := s.Append(rec.PID, rec.Kind, rec.Payload, nil); err != nil {
				t.Fatal(err)
			}
			return true
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return reclaimed
	}
	early, late := run(2), run(8)
	if late <= early {
		t.Fatalf("delayed GC reclaimed %d <= eager %d", late, early)
	}
}

func TestClosedStore(t *testing.T) {
	s, _ := newStore(t)
	addr, _ := s.Append(1, KindBase, []byte("x"), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if _, err := s.Append(1, KindBase, []byte("y"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append err = %v", err)
	}
	if _, err := s.Read(addr, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v", err)
	}
	if err := s.Flush(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
	dev := ssd.New(ssd.SamsungSSD)
	if _, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 5000}); err == nil {
		t.Fatal("non-multiple segment size accepted")
	}
	if _, err := Open(Config{Device: dev, BufferBytes: 4}); err == nil {
		t.Fatal("tiny buffer accepted")
	}
}

func TestAddressString(t *testing.T) {
	if (Address{}).String() != "addr(nil)" {
		t.Fatal("nil address string")
	}
	if got := (Address{Off: 11, Len: 5}).String(); got != "addr(10,5)" {
		t.Fatalf("String = %q", got)
	}
}

func TestConcurrentAppendRead(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	s, err := Open(Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				payload := []byte(fmt.Sprintf("w%d-i%d", w, i))
				addr, err := s.Append(uint64(w*1000+i), KindBase, payload, nil)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				rec, err := s.Read(addr, nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(rec.Payload, payload) {
					t.Errorf("payload mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: append/flush/read round-trips arbitrary payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dev := ssd.New(ssd.SamsungSSD)
		s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
		if err != nil {
			return false
		}
		type exp struct {
			addr    Address
			payload []byte
		}
		var exps []exp
		for i, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			a, err := s.Append(uint64(i), KindDelta, p, nil)
			if err != nil {
				return false
			}
			exps = append(exps, exp{a, append([]byte(nil), p...)})
		}
		if err := s.Flush(nil); err != nil {
			return false
		}
		for _, e := range exps {
			rec, err := s.Read(e.addr, nil)
			if err != nil || !bytes.Equal(rec.Payload, e.payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the recovery scan survives GC holes — after trimming any
// subset of sealed segments, Scan returns exactly the records of the
// untrimmed segments, in order.
func TestScanResyncAcrossTrimmedSegmentsProperty(t *testing.T) {
	f := func(trimMask uint8, nRecords uint8) bool {
		dev := ssd.New(ssd.SamsungSSD)
		const segBytes = 8192
		s, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: segBytes})
		if err != nil {
			return false
		}
		n := int(nRecords)%60 + 20
		payload := make([]byte, 700)
		type rec struct {
			pid  uint64
			addr Address
		}
		var recs []rec
		for i := 0; i < n; i++ {
			a, err := s.Append(uint64(i+1), KindBase, payload, nil)
			if err != nil {
				return false
			}
			recs = append(recs, rec{uint64(i + 1), a})
		}
		if err := s.Flush(nil); err != nil {
			return false
		}
		// Trim sealed segments selected by the mask (simulating GC).
		sealedEnd := s.Tail() / segBytes
		trimmed := map[int64]bool{}
		for si := int64(0); si < sealedEnd && si < 8; si++ {
			if trimMask&(1<<uint(si)) != 0 {
				dev.Trim(si*segBytes, segBytes)
				trimmed[si] = true
			}
		}
		// Expected survivors: records whose segment was not trimmed.
		var want []uint64
		for _, r := range recs {
			if !trimmed[(r.addr.Off-1)/segBytes] {
				want = append(want, r.pid)
			}
		}
		// Reopen and scan.
		s2, err := Open(Config{Device: dev, BufferBytes: 4096, SegmentBytes: segBytes})
		if err != nil {
			return false
		}
		var got []uint64
		if err := s2.Scan(func(r Record, _ Address) bool {
			got = append(got, r.PID)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
