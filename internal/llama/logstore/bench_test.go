package logstore

import (
	"testing"

	"costperf/internal/ssd"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(Config{Device: ssd.New(ssd.SamsungSSD), BufferBytes: 1 << 20, SegmentBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkAppend(b *testing.B) {
	s := benchStore(b)
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(uint64(i), KindBase, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBuffered(b *testing.B) {
	s := benchStore(b)
	payload := make([]byte, 256)
	addr, err := s.Append(1, KindBase, payload, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(addr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadDurable(b *testing.B) {
	s := benchStore(b)
	payload := make([]byte, 256)
	addr, err := s.Append(1, KindBase, payload, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Flush(nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(addr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchStore(b)
		payload := make([]byte, 2048)
		var addrs []Address
		for j := 0; j < 4096; j++ {
			a, err := s.Append(uint64(j), KindBase, payload, nil)
			if err != nil {
				b.Fatal(err)
			}
			addrs = append(addrs, a)
		}
		if err := s.Flush(nil); err != nil {
			b.Fatal(err)
		}
		for _, a := range addrs[:len(addrs)/2] {
			s.Invalidate(a)
		}
		b.StartTimer()
		if _, err := s.CollectSegment(func(Record, Address) bool { return false }, nil); err != nil {
			b.Fatal(err)
		}
	}
}
