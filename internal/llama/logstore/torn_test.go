package logstore

import (
	"bytes"
	"testing"

	"costperf/internal/fault"
	"costperf/internal/ssd"
)

// TestRecoverTornFlushSweep tears the second buffer flush at every byte
// boundary of its record frame — through the 18-byte header and the
// payload — and checks that re-opening the store always recovers exactly
// the durable prefix: the first record survives, the torn record is
// discarded (unless the tear kept the whole frame), and the recovered tail
// lands on the last complete record so new appends overwrite the damage.
func TestRecoverTornFlushSweep(t *testing.T) {
	cfg := func(dev *ssd.Device) Config {
		return Config{Device: dev, BufferBytes: 4 << 10, SegmentBytes: 64 << 10}
	}
	payloadA := bytes.Repeat([]byte{0xA1}, 100)
	payloadB := bytes.Repeat([]byte{0xB2}, 80)
	frameA := int64(headerSize + len(payloadA))
	frameB := headerSize + len(payloadB)

	for keep := 0; keep <= frameB; keep++ {
		dev := ssd.New(ssd.SamsungSSD)
		inj := fault.NewInjector(int64(keep))
		dev.SetFaultInjector(inj)
		st, err := Open(cfg(dev))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(1, KindBase, payloadA, nil); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(nil); err != nil { // device write 1: intact
			t.Fatal(err)
		}
		inj.TearWrite(2, keep) // device write 2: torn after keep bytes
		if _, err := st.Append(2, KindDelta, payloadB, nil); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(nil); err != nil { // tear is silent, like power loss
			t.Fatal(err)
		}

		// Reopen over the same device: recovery rescans the log.
		rec, err := Open(cfg(dev))
		if err != nil {
			t.Fatalf("keep=%d: reopen failed: %v", keep, err)
		}
		var pids []uint64
		if err := rec.Scan(func(r Record, _ Address) bool {
			pids = append(pids, r.PID)
			return true
		}); err != nil {
			t.Fatalf("keep=%d: scan failed: %v", keep, err)
		}

		wantPids := []uint64{1}
		wantTail := frameA
		if keep == frameB {
			wantPids = []uint64{1, 2}
			wantTail = frameA + int64(frameB)
		}
		if len(pids) != len(wantPids) {
			t.Fatalf("keep=%d: recovered pids %v, want %v", keep, pids, wantPids)
		}
		for i := range pids {
			if pids[i] != wantPids[i] {
				t.Fatalf("keep=%d: recovered pids %v, want %v", keep, pids, wantPids)
			}
		}
		if got := rec.Tail(); got != wantTail {
			t.Fatalf("keep=%d: recovered tail %d, want %d", keep, got, wantTail)
		}

		// The recovered store must keep working: a new append lands at the
		// tail (overwriting any torn bytes) and survives its own flush.
		addr, err := rec.Append(3, KindBase, []byte("after"), nil)
		if err != nil {
			t.Fatalf("keep=%d: append after recovery: %v", keep, err)
		}
		if err := rec.Flush(nil); err != nil {
			t.Fatalf("keep=%d: flush after recovery: %v", keep, err)
		}
		r, err := rec.Read(addr, nil)
		if err != nil || !bytes.Equal(r.Payload, []byte("after")) {
			t.Fatalf("keep=%d: read-back after recovery = %v, %v", keep, r, err)
		}
	}
}
