package compress

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/fault"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func TestCompressDecompressRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("database pages compress well "), 100)
	comp, err := Compress(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("repetitive data did not compress: %d >= %d", len(comp), len(data))
	}
	out, err := Decompress(comp, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 1000)
	comp, _ := Compress(data, 0)
	if _, err := Decompress(comp, 999); err == nil {
		t.Fatal("oversize decompress accepted")
	}
	if _, err := Decompress(comp, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0xff, 0x00, 0x13}, 100); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := Compress(data, 0)
		if err != nil {
			return false
		}
		out, err := Decompress(comp, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newStore(t *testing.T) (*PageStore, *sim.Session, *ssd.Device) {
	t.Helper()
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	ps, err := NewPageStore(dev, sess, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ps, sess, dev
}

func TestPageStoreRoundTrip(t *testing.T) {
	ps, _, _ := newStore(t)
	page := bytes.Repeat([]byte("row data "), 300)
	if err := ps.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	got, err := ps.ReadPage(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page round trip mismatch")
	}
	if _, err := ps.ReadPage(99); !errors.Is(err, ErrNoPage) {
		t.Fatalf("missing page err = %v", err)
	}
}

func TestPageStoreRatioAndFootprint(t *testing.T) {
	ps, _, _ := newStore(t)
	for i := 0; i < 20; i++ {
		page := bytes.Repeat([]byte("compressible database page content "), 100)
		if err := ps.WritePage(uint64(i), page); err != nil {
			t.Fatal(err)
		}
	}
	if r := ps.Stats().Ratio(); r >= 0.5 {
		t.Fatalf("ratio = %v, want strong compression of repetitive pages", r)
	}
	if fp := ps.FootprintBytes(); fp == 0 || fp >= 20*3600 {
		t.Fatalf("footprint = %d", fp)
	}
}

func TestCSSChargedAsCSSOps(t *testing.T) {
	ps, sess, _ := newStore(t)
	page := bytes.Repeat([]byte("page "), 500)
	if err := ps.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	sess.Tracker().Reset()
	if _, err := ps.ReadPage(1); err != nil {
		t.Fatal(err)
	}
	tk := sess.Tracker()
	if tk.Ops(sim.OpCSS) != 1 {
		t.Fatalf("CSS ops = %d, want 1", tk.Ops(sim.OpCSS))
	}
	// A CSS op must cost more than the same read without decompression
	// (the Figure 8 execution-cost ordering).
	cssCost := tk.MeanCost(sim.OpCSS)
	p := sess.Profile()
	plainIO := p.IOIssueUser + p.ContextSwitch
	if cssCost <= plainIO {
		t.Fatalf("CSS cost %v not above plain I/O cost %v", cssCost, plainIO)
	}
}

func TestPageStoreOverwrite(t *testing.T) {
	ps, _, _ := newStore(t)
	if err := ps.WritePage(1, []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	if err := ps.WritePage(1, []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	got, err := ps.ReadPage(1)
	if err != nil || string(got) != "version-2" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestPageStoreConcurrent(t *testing.T) {
	ps, _, _ := newStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := uint64(w*1000 + i)
				page := workload.ValueFor(id, 800)
				if err := ps.WritePage(id, page); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := ps.ReadPage(id)
				if err != nil || !bytes.Equal(got, page) {
					t.Errorf("read mismatch: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNilDevice(t *testing.T) {
	if _, err := NewPageStore(nil, nil, 0); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestPageStoreDeviceFailures(t *testing.T) {
	ps, _, dev := newStore(t)
	if err := ps.WritePage(1, []byte("page-one")); err != nil {
		t.Fatal(err)
	}
	// Injected read failure surfaces (the page store has no retry layer,
	// so even a transient fault reaches the caller).
	inj := fault.NewInjector(1)
	dev.SetFaultInjector(inj)
	inj.FailNextReads(1, fault.ClassTransient)
	if _, err := ps.ReadPage(1); err == nil {
		t.Fatal("injected read failure swallowed")
	}
	// And the page is still readable afterwards.
	if v, err := ps.ReadPage(1); err != nil || string(v) != "page-one" {
		t.Fatalf("post-failure read = %q, %v", v, err)
	}
	// Injected write failure surfaces and does not corrupt the index.
	inj.SetWriteErrorRate(1.0)
	if err := ps.WritePage(2, []byte("page-two")); err == nil {
		t.Fatal("injected write failure swallowed")
	}
	inj.SetWriteErrorRate(0)
	if _, err := ps.ReadPage(2); err == nil {
		t.Fatal("failed write left a readable page")
	}
	if v, err := ps.ReadPage(1); err != nil || string(v) != "page-one" {
		t.Fatalf("page 1 corrupted by failed write: %q, %v", v, err)
	}
}

func TestPageStoreCorruptOnDevice(t *testing.T) {
	ps, _, dev := newStore(t)
	page := bytes.Repeat([]byte("data "), 200)
	if err := ps.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	// Clobber the stored bytes: decompression must fail loudly.
	if err := dev.WriteAt(0, bytes.Repeat([]byte{0xAB}, 32), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.ReadPage(1); err == nil {
		t.Fatal("corrupted page decompressed successfully")
	}
}
