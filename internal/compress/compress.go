// Package compress implements the compressed-secondary-storage (CSS)
// operation form of paper Section 7.2: pages are stored compressed on
// flash, trading extra CPU on every access for the lowest storage rent of
// the three operation forms (Figure 8). This is the Facebook/RocksDB
// space-amplification play the paper describes.
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"

	"costperf/internal/metrics"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// Compress deflates data at the given level (flate.DefaultCompression if
// level is 0).
func Compress(data []byte, level int) ([]byte, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress inflates data, refusing to expand beyond maxSize bytes.
func Decompress(data []byte, maxSize int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(maxSize)+1))
	if err != nil {
		return nil, err
	}
	if len(out) > maxSize {
		return nil, fmt.Errorf("compress: payload exceeds %d bytes", maxSize)
	}
	return out, nil
}

// Stats counts page-store events.
type Stats struct {
	PagesWritten      metrics.Counter
	PagesRead         metrics.Counter
	BytesUncompressed metrics.Counter
	BytesCompressed   metrics.Counter
}

// Ratio returns compressed/uncompressed bytes, or 1 when nothing was
// written.
func (s *Stats) Ratio() float64 {
	u := s.BytesUncompressed.Value()
	if u == 0 {
		return 1
	}
	return float64(s.BytesCompressed.Value()) / float64(u)
}

// ErrNoPage is returned when reading an unknown page.
var ErrNoPage = errors.New("compress: no such page")

// PageStore keeps pages compressed on a device. Every read is a CSS
// operation: one I/O plus decompression CPU.
type PageStore struct {
	dev     ssd.Dev
	session *sim.Session
	level   int

	mu    sync.Mutex
	tail  int64
	index map[uint64]extent
	stats Stats
}

type extent struct {
	off      int64
	clen     int32
	origSize int32
}

// NewPageStore creates a compressed page store on the device. level is
// the flate level (0 = default).
func NewPageStore(dev ssd.Dev, session *sim.Session, level int) (*PageStore, error) {
	if dev == nil {
		return nil, errors.New("compress: nil device")
	}
	return &PageStore{dev: dev, session: session, level: level, index: map[uint64]extent{}}, nil
}

// Stats returns the store's counters.
func (p *PageStore) Stats() *Stats { return &p.stats }

// WritePage compresses and stores a page (superseding any prior version).
func (p *PageStore) WritePage(id uint64, data []byte) error {
	var ch *sim.Charger
	if p.session != nil {
		ch = p.session.Begin()
		ch.Add(ch.Profile().CompressPerByte * sim.Cost(len(data)))
	}
	comp, err := Compress(data, p.level)
	if err != nil {
		if ch != nil {
			ch.Abandon()
		}
		return err
	}
	p.mu.Lock()
	off := p.tail
	p.tail += int64(len(comp))
	p.mu.Unlock()
	if err := p.dev.WriteAt(off, comp, ch); err != nil {
		if ch != nil {
			ch.Abandon()
		}
		return err
	}
	p.mu.Lock()
	p.index[id] = extent{off: off, clen: int32(len(comp)), origSize: int32(len(data))}
	p.mu.Unlock()
	p.stats.PagesWritten.Inc()
	p.stats.BytesUncompressed.Add(int64(len(data)))
	p.stats.BytesCompressed.Add(int64(len(comp)))
	if ch != nil {
		ch.Escalate(sim.OpCSS)
		ch.Settle()
	}
	return nil
}

// ReadPage fetches and decompresses a page — a CSS operation.
func (p *PageStore) ReadPage(id uint64) ([]byte, error) {
	p.mu.Lock()
	ext, ok := p.index[id]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoPage
	}
	var ch *sim.Charger
	if p.session != nil {
		ch = p.session.Begin()
	}
	raw, err := p.dev.ReadAt(ext.off, int(ext.clen), ch)
	if err != nil {
		if ch != nil {
			ch.Abandon()
		}
		return nil, err
	}
	out, err := Decompress(raw, int(ext.origSize))
	if err != nil {
		if ch != nil {
			ch.Abandon()
		}
		return nil, err
	}
	p.stats.PagesRead.Inc()
	if ch != nil {
		ch.Add(ch.Profile().DecompressPerByte * sim.Cost(len(out)))
		ch.Escalate(sim.OpCSS)
		ch.Settle()
	}
	return out, nil
}

// FootprintBytes returns the compressed bytes currently indexed.
func (p *PageStore) FootprintBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, e := range p.index {
		n += int64(e.clen)
	}
	return n
}
