package integration

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"costperf/internal/fault"
	"costperf/internal/masstree"
	"costperf/internal/repl"
	"costperf/internal/ssd"
)

// failoverFull runs the full 100-seed soak (scripts/check.sh sets it under
// the CHECK_FAILOVER=1 gate); the default keeps tier-1 runs quick.
var failoverFull = flag.Bool("failover.full", false, "run the full 100-seed failover soak")

// mtDC adapts the main-memory MassTree to tc.DataComponent (+ Scanner),
// so both replicas of the cluster run a real index as their data
// component and the chaos sweep's oracle uses the same structure.
type mtDC struct{ t *masstree.Tree }

func newMtDC() *mtDC { return &mtDC{t: masstree.New(nil)} }

func (d *mtDC) Get(key []byte) ([]byte, bool, error) {
	v, ok := d.t.Get(key)
	return v, ok, nil
}
func (d *mtDC) BlindWrite(key, val []byte) error { d.t.Put(key, val); return nil }
func (d *mtDC) Delete(key []byte) error          { d.t.Delete(key); return nil }
func (d *mtDC) Scan(start []byte, limit int, fn func(key, val []byte) bool) error {
	d.t.Scan(start, limit, fn)
	return nil
}

// dump materializes a MassTree's full contents for byte-wise comparison.
func (d *mtDC) dump() map[string][]byte {
	out := map[string][]byte{}
	d.t.Scan(nil, 0, func(k, v []byte) bool {
		out[string(k)] = append([]byte(nil), v...)
		return true
	})
	return out
}

// failoverMode selects what kind of disaster a seed runs into.
type failoverMode int

const (
	modeForcedPromotion failoverMode = iota // operator-initiated switch
	modePrimaryCrash                        // primary log device dies mid-ship
	modePartitionedSwitch                   // promotion forced during a partition
	failoverModes
)

func (m failoverMode) String() string {
	switch m {
	case modeForcedPromotion:
		return "forced"
	case modePrimaryCrash:
		return "crash"
	case modePartitionedSwitch:
		return "partitioned"
	}
	return "?"
}

// TestFailoverChaosSweep is the acceptance soak: a seeded sweep of lossy
// networks (drops, duplicates, reorders, partitions), a mid-ship primary
// crash or a forced promotion per seed, asserting after failover that
//
//   - no write the cluster ever acknowledged is lost,
//   - the demoted primary's commits are fenced by the epoch gate,
//   - the standby's applied LSN converged to the primary's durable LSN
//     (when the primary's log survived to be compared against), and
//   - PITR to a checkpoint recorded mid-run is byte-identical against a
//     MassTree oracle snapshotted at the same moment.
//
// CHECK_FAILOVER=1 in scripts/check.sh runs the full 100 seeds under
// -race; plain `go test` runs a 12-seed slice (3 in -short).
func TestFailoverChaosSweep(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	if *failoverFull {
		seeds = 100
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		mode := failoverMode(seed % int64(failoverModes))
		t.Run(fmt.Sprintf("seed%03d-%s", seed, mode), func(t *testing.T) {
			t.Parallel()
			runFailoverSeed(t, seed, mode)
		})
	}
}

func runFailoverSeed(t *testing.T, seed int64, mode failoverMode) {
	rng := rand.New(rand.NewSource(seed))
	net := fault.NewNetInjector(seed)
	// Lossy from the start: up to ~8% drops, duplicates, and reorders.
	net.SetRates(0.08*rng.Float64(), 0.08*rng.Float64(), 0.08*rng.Float64())

	primaryDC, standbyDC := newMtDC(), newMtDC()
	primaryLog := ssd.New(ssd.Config{Name: "plog", MaxIOPS: 1e6, LatencySec: 1e-6})
	standbyLog := ssd.New(ssd.Config{Name: "slog", MaxIOPS: 1e6, LatencySec: 1e-6})
	inj := fault.NewInjector(seed)
	primaryLog.SetFaultInjector(inj)

	cluster, err := repl.NewCluster(repl.ClusterConfig{
		PrimaryDC: primaryDC, PrimaryLog: primaryLog,
		StandbyDC: standbyDC, StandbyLog: standbyLog,
		Net:          net,
		CommitWait:   5 * time.Second,
		AutoFailover: true,
		WatchEvery:   time.Millisecond,
		PromoteDrain: 2 * time.Second,
		BatchBytes:   256 + rng.Intn(512),
		AckTimeout:   2 * time.Millisecond,
		RetryBase:    200 * time.Microsecond,
		RetryMax:     2 * time.Millisecond,
		Seed:         seed,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	ctx := context.Background()
	oracle := newMtDC() // records ONLY acknowledged writes
	key := func(i int) []byte { return []byte(fmt.Sprintf("s%03d-k%04d", seed, i)) }

	write := func(i int) {
		t.Helper()
		v := make([]byte, 1+rng.Intn(120))
		for j := range v {
			v[j] = byte(rng.Intn(256))
		}
		if err := cluster.Put(ctx, key(i), v); err == nil {
			oracle.t.Put(key(i), v)
		}
	}

	// Phase 1: steady writes under the lossy link, with a bounded partition
	// episode thrown in (it heals by itself, so the phase always converges).
	phase1 := 40 + rng.Intn(40)
	for i := 0; i < phase1; i++ {
		if i == phase1/2 {
			net.PartitionFor(int64(1 + rng.Intn(15)))
		}
		write(i)
	}

	// Checkpoint: the writer is quiesced (we are it), so the standby's
	// applied state equals the acked oracle right now.
	ck := cluster.Standby().MarkCheckpoint()
	pitrOracle := oracle.dump()

	// Phase 2: overwrite and churn past the checkpoint.
	for i := 0; i < 30+rng.Intn(30); i++ {
		write(rng.Intn(phase1 + 50))
	}

	// Disaster.
	oldPrimary := cluster.Primary()
	oldDurable := oldPrimary.DurableLSN()
	switch mode {
	case modeForcedPromotion:
		if err := cluster.Promote(); err != nil {
			t.Fatalf("forced promotion: %v", err)
		}
	case modePrimaryCrash:
		// The primary's log device dies mid-ship: a torn final flush, then
		// every I/O fails. Auto-failover must kick in. Scheduled events are
		// keyed by absolute write count since installation, so target the
		// write after everything the run has already done.
		_, writesSoFar := inj.Counts()
		inj.CrashAtWrite(writesSoFar+1, rng.Intn(64))
		deadline := time.Now().Add(10 * time.Second)
		for !cluster.Promoted() {
			_ = cluster.Put(ctx, []byte("poke"), []byte("x")) // never acked pre-promotion; ignore
			if time.Now().After(deadline) {
				t.Fatal("auto failover never promoted after primary crash")
			}
			time.Sleep(time.Millisecond)
		}
	case modePartitionedSwitch:
		// Promotion forced while the link is dead: the drain can only cover
		// what was already acked — which is exactly the durability contract.
		net.Partition()
		if err := cluster.Promote(); err != nil {
			t.Fatalf("partitioned promotion: %v", err)
		}
		net.Heal()
	}

	if !cluster.Promoted() || cluster.Epoch() != 2 {
		t.Fatalf("promoted=%v epoch=%d after %s", cluster.Promoted(), cluster.Epoch(), mode)
	}

	// Stale-primary writes are fenced by the epoch gate.
	if tx, err := oldPrimary.Begin(); err == nil {
		tx.Write([]byte("zombie"), []byte("write"))
		if err := tx.Commit(); !errors.Is(err, repl.ErrFenced) {
			t.Fatalf("stale-primary commit = %v, want ErrFenced", err)
		}
	}

	// Convergence: when the old primary's log survived intact and the link
	// was up for the drain, the standby applied everything durable.
	if mode == modeForcedPromotion {
		if got := cluster.Standby().AppliedLSN(); got != oldDurable {
			t.Fatalf("standby applied %d, want primary durable %d", got, oldDurable)
		}
	}

	// Zero lost acknowledged writes: every oracle key reads back identical
	// through the promoted cluster.
	for k, want := range oracle.dump() {
		got, ok, err := cluster.Get(ctx, []byte(k))
		if err != nil {
			t.Fatalf("get %q after failover: %v", k, err)
		}
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("acked write %q lost or changed after failover (ok=%v)", k, ok)
		}
	}

	// The promoted cluster accepts writes and remains consistent.
	if err := cluster.Put(ctx, []byte("epilogue"), []byte("ok")); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
	if v, ok, _ := cluster.Get(ctx, []byte("epilogue")); !ok || string(v) != "ok" {
		t.Fatal("write after failover not readable")
	}

	// PITR to the recorded checkpoint is byte-identical vs the MassTree
	// oracle snapshot taken at mark time — even though the promoted TC has
	// continued appending to the same standby log since.
	dst := newMtDC()
	res, err := cluster.Standby().PITRToLSN(ck.LSN, dst)
	if err != nil {
		t.Fatalf("PITRToLSN(%d): %v", ck.LSN, err)
	}
	if res.Replay.TruncatedAt != ck.LSN {
		t.Fatalf("PITR reconstructed to %d, want %d", res.Replay.TruncatedAt, ck.LSN)
	}
	got := dst.dump()
	if len(got) != len(pitrOracle) {
		t.Fatalf("PITR state has %d keys, oracle %d", len(got), len(pitrOracle))
	}
	for k, want := range pitrOracle {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("PITR key %q = %x, oracle %x", k, got[k], want)
		}
	}

	// Timestamps stayed monotonic across failover: a fresh commit on the
	// promoted TC must postdate everything the standby applied.
	if ts := cluster.Standby().MaxAppliedTS(); ts > 0 {
		tcNow := cluster.Primary()
		tx, err := tcNow.Begin()
		if err != nil {
			t.Fatalf("begin on promoted primary: %v", err)
		}
		tx.Write([]byte("ts-probe"), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit on promoted primary: %v", err)
		}
	}

	// The fenced counter moved (the zombie commit above at minimum).
	if cluster.Stats().FencedWrites.Value() == 0 {
		t.Fatal("no fenced writes counted for the demoted primary")
	}
	if cluster.Stats().Promotions.Value() != 1 {
		t.Fatalf("promotions = %d, want 1", cluster.Stats().Promotions.Value())
	}
}
