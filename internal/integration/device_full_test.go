package integration

import (
	"errors"
	"fmt"
	"testing"

	"costperf/internal/bwtree"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/ssd"
)

// TestLogstoreDegradesReadOnlyWhenDeviceFull is the device-full regression
// test: filling an ssd.Device with CapacityBytes must NOT panic or corrupt
// the log-structured store — the typed ssd.ErrNoSpace classifies as a
// persistent fault, the store latches its Health degraded (read-only), and
// every record appended before the wall stays readable.
func TestLogstoreDegradesReadOnlyWhenDeviceFull(t *testing.T) {
	dev := ssd.New(ssd.Config{
		Name: "full-log", MaxIOPS: 1e6, LatencySec: 1e-6,
		CapacityBytes: 128 << 10,
	})
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatalf("logstore.Open: %v", err)
	}
	payload := make([]byte, 512)
	var good []logstore.Address
	var wall error
	for i := 0; i < 10000; i++ {
		addr, err := st.Append(uint64(i%7+1), logstore.KindDelta, payload, nil)
		if err != nil {
			wall = err
			break
		}
		if err := st.Flush(nil); err != nil {
			wall = err
			break
		}
		good = append(good, addr)
	}
	if wall == nil {
		t.Fatal("device never filled; capacity not enforced")
	}
	if !errors.Is(wall, ssd.ErrNoSpace) && !errors.Is(wall, logstore.ErrDegraded) {
		t.Fatalf("fill error = %v, want ErrNoSpace or ErrDegraded", wall)
	}
	if fault.Classify(wall) != fault.ClassPersistent {
		t.Fatalf("fill error classifies %v, want persistent", fault.Classify(wall))
	}
	// The store latched read-only rather than panicking.
	if !st.Stats().Health.Degraded() {
		t.Fatalf("logstore health = %s, want degraded", st.Stats().Health.String())
	}
	if _, err := st.Append(1, logstore.KindDelta, payload, nil); !errors.Is(err, logstore.ErrDegraded) {
		t.Fatalf("append after latch = %v, want ErrDegraded", err)
	}
	// Every record appended before the wall is still served.
	if len(good) == 0 {
		t.Fatal("nothing was appended before the device filled")
	}
	for i, addr := range good {
		rec, err := st.Read(addr, nil)
		if err != nil {
			t.Fatalf("read %d after degrade: %v", i, err)
		}
		if len(rec.Payload) != len(payload) {
			t.Fatalf("read %d: %d payload bytes, want %d", i, len(rec.Payload), len(payload))
		}
	}
}

// TestLSMDegradesReadOnlyWhenDeviceFull drives the LSM into a full device:
// flush/compaction hits ssd.ErrNoSpace, the tree latches read-only instead
// of panicking, and reads keep serving what was acknowledged.
func TestLSMDegradesReadOnlyWhenDeviceFull(t *testing.T) {
	dev := ssd.New(ssd.Config{
		Name: "full-lsm", MaxIOPS: 1e6, LatencySec: 1e-6,
		CapacityBytes: 192 << 10,
	})
	tr, err := lsm.New(lsm.Config{Device: dev, MemtableBytes: 4096})
	if err != nil {
		t.Fatalf("lsm.New: %v", err)
	}
	val := make([]byte, 256)
	acked := 0
	var wall error
	for i := 0; i < 20000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			wall = err
			break
		}
		acked++
	}
	if wall == nil {
		t.Fatal("device never filled; capacity not enforced")
	}
	if !tr.Stats().Health.Degraded() {
		t.Fatalf("lsm health = %s, want degraded after %v", tr.Stats().Health.String(), wall)
	}
	if err := tr.Put([]byte("more"), val); !errors.Is(err, lsm.ErrDegraded) {
		t.Fatalf("put after latch = %v, want ErrDegraded", err)
	}
	if acked == 0 {
		t.Fatal("nothing was acknowledged before the device filled")
	}
	// Reads still serve acknowledged keys — durable tables plus whatever
	// the memtable holds. Spot-check the oldest durable prefix: keys that
	// reached tables before the wall.
	missing := 0
	for i := 0; i < acked; i++ {
		v, ok, err := tr.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("get key-%06d after degrade: %v", i, err)
		}
		if !ok {
			missing++
			continue
		}
		if len(v) != len(val) {
			t.Fatalf("key-%06d: %d value bytes, want %d", i, len(v), len(val))
		}
	}
	if missing != 0 {
		t.Fatalf("%d of %d acknowledged keys unreadable after degrade", missing, acked)
	}
}

// TestBwTreeOverFullDeviceStaysServable drives the full stack — Bw-tree
// over the LLAMA log store over a capacity-bounded device — into the wall
// and checks the failure is a latched read-only state, not a panic.
func TestBwTreeOverFullDeviceStaysServable(t *testing.T) {
	dev := ssd.New(ssd.Config{
		Name: "full-bw", MaxIOPS: 1e6, LatencySec: 1e-6,
		CapacityBytes: 256 << 10,
	})
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatalf("logstore.Open: %v", err)
	}
	tree, err := bwtree.New(bwtree.Config{Store: st, ConsolidateAfter: 4})
	if err != nil {
		t.Fatalf("bwtree.New: %v", err)
	}
	// Bw-tree updates are in-memory delta chains until a flush pushes pages
	// through the log store, so the device pressure comes from periodic
	// checkpoints.
	val := make([]byte, 200)
	acked := 0
	filled := false
	for i := 0; i < 20000 && !filled; i++ {
		if err := tree.BlindWrite([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			filled = true
			break
		}
		acked++
		if i%200 == 199 {
			if err := tree.FlushAll(); err != nil {
				filled = true
			}
		}
	}
	if !filled {
		t.Fatal("device never filled; capacity not enforced")
	}
	if !st.Stats().Health.Degraded() {
		t.Fatalf("logstore health = %s, want degraded", st.Stats().Health.String())
	}
	// Acknowledged writes stay readable through the tree.
	for i := 0; i < acked; i += 97 {
		v, ok, err := tree.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil {
			t.Fatalf("get k%06d after degrade: %v", i, err)
		}
		if !ok || len(v) != len(val) {
			t.Fatalf("k%06d lost after device-full degrade (ok=%v len=%d)", i, ok, len(v))
		}
	}
}
