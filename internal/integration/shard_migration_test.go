package integration

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/shard"
	"costperf/internal/tc"
)

// shardFull runs the full 100-seed migration soak (scripts/check.sh sets
// it under the CHECK_SHARD=1 gate); the default keeps tier-1 runs quick.
var shardFull = flag.Bool("shard.full", false, "run the full 100-seed shard-migration soak")

// migChaos selects what a seed throws at the migration. Seeds cycle
// through a crash at every phase boundary of the state machine, plus a
// crash-free control; every seed additionally runs a lossy, periodically
// partitioned migration link and concurrent writers hitting the moving
// shard.
type migChaos struct {
	crashAt shard.Phase // boundary to die at; -1 = no injected crash
}

func (c migChaos) String() string {
	if c.crashAt < 0 {
		return "nocrash"
	}
	return "crash-" + c.crashAt.String()
}

// chaosForSeed derives the per-seed scenario: 6 phase boundaries + 1
// crash-free case, cycled so a 100-seed sweep hits every boundary ~14x.
func chaosForSeed(seed int64) migChaos {
	k := seed % 7
	if k == 6 {
		return migChaos{crashAt: -1}
	}
	return migChaos{crashAt: shard.Phase(k)}
}

// TestShardMigrationChaosSweep is the acceptance soak for live shard
// migration: a seeded sweep where every run migrates a shard while
// concurrent writers keep hitting it, the migration link drops,
// duplicates, reorders, and periodically partitions, and most seeds kill
// the migration at one of its phase boundaries and resume it. After the
// cutover it asserts
//
//   - zero lost acked writes: every write the router acknowledged reads
//     back byte-identical,
//   - exactly-once application: the full scatter-gather dump equals the
//     oracle exactly — no duplicated or resurrected versions survive the
//     blind-redo resumes,
//   - the stale owner is fenced: commits on the source TC fail with
//     ErrMoved forever,
//   - shards that were not moving never returned a single error.
//
// CHECK_SHARD=1 in scripts/check.sh runs the full 100 seeds under -race;
// plain `go test` runs a 12-seed slice (3 in -short).
func TestShardMigrationChaosSweep(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	if *shardFull {
		seeds = 100
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		chaos := chaosForSeed(seed)
		t.Run(fmt.Sprintf("seed%03d-%s", seed, chaos), func(t *testing.T) {
			t.Parallel()
			runShardMigrationSeed(t, seed, chaos)
		})
	}
}

const migShards = 4

func runShardMigrationSeed(t *testing.T, seed int64, chaos migChaos) {
	rng := rand.New(rand.NewSource(seed))
	r, err := shard.New(shard.Config{Shards: migShards, Seed: seed})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer r.Close()
	ctx := context.Background()

	// oracle records only acknowledged state: preloaded keys plus every
	// write the router returned nil for. The final store must equal it.
	oracle := map[string][]byte{}
	var omu sync.Mutex
	for i := 0; i < 200; i++ {
		k, v := []byte(fmt.Sprintf("init%04d", i)), []byte(fmt.Sprintf("seed%d-v%d", seed, i))
		if err := r.Put(ctx, k, v); err != nil {
			t.Fatalf("preload: %v", err)
		}
		oracle[string(k)] = v
	}

	moving := int(seed) % migShards

	// Writers own disjoint key slices and write monotonically increasing
	// versions. A write may fail only with the fenced-owner family — and
	// only when its key routes to the moving shard; those writes are
	// guaranteed un-committed (the commit gate rejects before the log
	// append), so the oracle simply keeps the previous acked version.
	const writers = 3
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			for version := 0; !stop.Load(); version++ {
				key := []byte(fmt.Sprintf("w%d-k%02d", w, wrng.Intn(40)))
				val := []byte(fmt.Sprintf("w%d-s%d-v%06d", w, seed, version))
				err := r.Put(ctx, key, val)
				if err == nil {
					omu.Lock()
					oracle[string(key)] = val
					omu.Unlock()
					continue
				}
				if !errors.Is(err, shard.ErrMoved) && !errors.Is(err, engine.ErrClosed) && !errors.Is(err, tc.ErrClosed) {
					errCh <- fmt.Errorf("writer %d key %s: unexpected error %w", w, key, err)
					return
				}
				if shard.SlotOf(key, migShards) != moving {
					errCh <- fmt.Errorf("writer %d: error %v on non-moving shard %d", w, err, shard.SlotOf(key, migShards))
					return
				}
			}
		}(w)
	}

	// The migration link is lossy for every seed and partitions in
	// bounded episodes while the move is in flight.
	link := fault.NewNetInjector(seed)
	link.SetRates(0.05*rng.Float64(), 0.05*rng.Float64(), 0.05*rng.Float64())
	var crashed atomic.Bool
	errCrash := errors.New("injected crash")
	m, err := r.Migrate(shard.MigrateConfig{
		Shard: moving,
		Net:   link,
		OnPhase: func(ph shard.Phase) error {
			if chaos.crashAt >= 0 && ph == chaos.crashAt && !crashed.Swap(true) {
				return errCrash
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}

	partDone := make(chan struct{})
	go func() {
		defer close(partDone)
		// Time-bounded episodes with explicit heals: a message-count
		// budget alone can wedge the link forever, because refused
		// dials do not consume it.
		prng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for !m.Done() {
			time.Sleep(time.Duration(1+prng.Intn(3)) * time.Millisecond)
			link.Partition()
			time.Sleep(time.Duration(1+prng.Intn(2)) * time.Millisecond)
			link.Heal()
		}
		link.Heal()
	}()

	// Drive the migration to completion through the injected crash and
	// any partition-refused dials; each Run resumes the state machine.
	var lastErr error
	for attempt := 0; attempt < 200 && !m.Done(); attempt++ {
		lastErr = m.Run(ctx)
		if lastErr != nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !m.Done() {
		t.Fatalf("migration never completed; last error: %v", lastErr)
	}
	<-partDone
	if chaos.crashAt >= 0 && !crashed.Load() {
		t.Fatalf("crash at %v never fired", chaos.crashAt)
	}

	// Let the writers land a few post-cutover versions, then stop them.
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if got := r.MapEpoch(); got != 1 {
		t.Fatalf("map epoch = %d, want 1", got)
	}
	if got := r.Stats().Migrations.Value(); got != 1 {
		t.Fatalf("migrations = %d, want 1", got)
	}

	// The stale owner is fenced: its TC rejects commits forever.
	tx, err := m.SourceTC().Begin()
	if err != nil {
		t.Fatalf("begin on fenced source: %v", err)
	}
	if err := tx.Write([]byte("zombie"), []byte("write")); err != nil {
		t.Fatalf("stage write on fenced source: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, shard.ErrMoved) {
		t.Fatalf("commit on fenced source = %v, want ErrMoved", err)
	}

	// Zero lost acked writes: every acknowledged key reads back
	// byte-identical through the router.
	omu.Lock()
	defer omu.Unlock()
	for k, want := range oracle {
		got, ok, err := r.Get(ctx, []byte(k))
		if err != nil || !ok {
			t.Fatalf("acked key %s unreadable after migration: ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s = %q, want %q", k, got, want)
		}
	}

	// Exactly-once application: the full scatter-gather dump matches the
	// oracle exactly — nothing extra, nothing stale, globally ordered.
	dump := map[string][]byte{}
	var prev []byte
	err = r.Scan(ctx, nil, 0, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("scan order violated: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		dump[string(k)] = append([]byte(nil), v...)
		return true
	})
	if err != nil {
		t.Fatalf("full scan after migration: %v", err)
	}
	if len(dump) != len(oracle) {
		t.Fatalf("store holds %d keys, oracle %d", len(dump), len(oracle))
	}
	for k, want := range oracle {
		if !bytes.Equal(dump[k], want) {
			t.Fatalf("dumped key %s = %q, want %q", k, dump[k], want)
		}
	}
}
