// Package integration_test exercises the full Deuteronomy stack — TC over
// Bw-tree over LLAMA (cache manager + log store) over the simulated SSD —
// through lifecycles no single package test covers: failure injection,
// repeated checkpoint/crash/recover cycles, GC racing with eviction, and
// eviction policies under live concurrent load.
package integration_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/fault"
	"costperf/internal/llama"
	"costperf/internal/llama/logstore"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/tc"
	"costperf/internal/workload"
)

type fullStack struct {
	sess *sim.Session
	dev  *ssd.Device
	st   *logstore.Store
	tree *bwtree.Tree
	mgr  *llama.Manager
}

func buildStack(t testing.TB) *fullStack {
	t.Helper()
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 16, SegmentBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bwtree.New(bwtree.Config{Store: st, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := llama.NewManager(llama.Config{
		Owner:            tree,
		Clock:            sess.Clock(),
		Policy:           llama.PolicyBreakeven,
		BreakevenSeconds: core.PaperCosts().BreakevenInterval(),
		RetainDeltas:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fullStack{sess: sess, dev: dev, st: st, tree: tree, mgr: mgr}
}

func TestDeviceReadFailureSurfacesAndRecovers(t *testing.T) {
	s := buildStack(t)
	for i := 0; i < 1000; i++ {
		if err := s.tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range s.tree.Pages() {
		if err := s.tree.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1)
	s.dev.SetFaultInjector(inj)
	// A transient read fault is absorbed by the Bw-tree's retry loop: the
	// read completes and the retry meter records the absorption.
	inj.FailNextReads(1, fault.ClassTransient)
	if _, ok, err := s.tree.Get(workload.Key(0)); err != nil || !ok {
		t.Fatalf("transient read fault not absorbed: ok=%v err=%v", ok, err)
	}
	if got := s.tree.Stats().Retry.Absorbed.Value(); got == 0 {
		t.Fatal("retry meter recorded no absorbed faults")
	}
	// A persistent read fault surfaces immediately (no retry storm). Evict
	// again first: the transient probe above reloaded the page.
	for _, pid := range s.tree.Pages() {
		if err := s.tree.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	inj.FailNextReads(1, fault.ClassPersistent)
	if _, _, err := s.tree.Get(workload.Key(1)); !errors.Is(err, fault.ErrPersistent) {
		t.Fatalf("persistent read fault not surfaced: %v", err)
	}
	// ...but read failures never latch the degraded state, and nothing is
	// corrupted: all data remains reachable.
	if s.tree.Stats().Health.Degraded() {
		t.Fatal("read failure degraded the tree")
	}
	for i := 0; i < 1000; i++ {
		v, ok, err := s.tree.Get(workload.Key(uint64(i)))
		if err != nil || !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 64)) {
			t.Fatalf("key %d after failure: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestDeviceWriteFailureSurfacesAndRecovers(t *testing.T) {
	s := buildStack(t)
	for i := 0; i < 500; i++ {
		if err := s.tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	inj := fault.NewInjector(1)
	s.dev.SetFaultInjector(inj)
	inj.SetWriteErrorRate(1.0)
	// With every write failing transiently, the retry budget exhausts and
	// the flush fails — but as a transient error, so the store does not
	// latch degraded and recovers as soon as the fault clears.
	err := error(nil)
	for _, pid := range s.tree.Pages() {
		if e := s.tree.FlushPage(pid); e != nil {
			err = e
		}
	}
	if e := s.st.Flush(nil); e != nil {
		err = e
	}
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("write failure not surfaced: %v", err)
	}
	if s.st.Stats().Retry.Exhausted.Value() == 0 {
		t.Fatal("retry meter recorded no exhausted budgets")
	}
	if s.st.Stats().Health.Degraded() || s.tree.Stats().Health.Degraded() {
		t.Fatal("transient write faults latched the degraded state")
	}
	// ...and succeed after the fault clears.
	inj.SetWriteErrorRate(0)
	for _, pid := range s.tree.Pages() {
		if err := s.tree.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for _, pid := range s.tree.Pages() {
		if err := s.tree.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, ok, err := s.tree.Get(workload.Key(uint64(i))); err != nil || !ok {
			t.Fatalf("key %d after fault recovery: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestRepeatedCheckpointCrashRecover(t *testing.T) {
	// Crash-point sweep: after each checkpointed batch, "crash" (drop all
	// in-memory state) and recover from the device; everything up to the
	// checkpoint must be present.
	dev := ssd.New(ssd.SamsungSSD)
	openStack := func() (*logstore.Store, *bwtree.Tree) {
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 16, SegmentBytes: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := bwtree.Open(bwtree.Config{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return st, tree
	}

	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 16, SegmentBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bwtree.New(bwtree.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 6, 400
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			id := uint64(b*perBatch + i)
			if err := tree.Insert(workload.Key(id), workload.ValueFor(id, 48)); err != nil {
				t.Fatal(err)
			}
		}
		// Also mutate old data so delta flushing and supersession happen.
		if b > 0 {
			for i := 0; i < 50; i++ {
				id := uint64(i * b)
				if err := tree.Insert(workload.Key(id), workload.ValueFor(id+7, 48)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := tree.FlushAll(); err != nil {
			t.Fatal(err)
		}
		// Crash: reopen from the device only.
		st.Close()
		st, tree = openStack()
		count, err := tree.Len()
		if err != nil {
			t.Fatal(err)
		}
		if want := (b + 1) * perBatch; count != want {
			t.Fatalf("after crash %d: %d keys, want %d", b, count, want)
		}
		// Spot-check content including the superseded keys.
		if b > 0 {
			for i := 1; i < 50; i++ {
				id := uint64(i * b)
				v, ok, err := tree.Get(workload.Key(id))
				if err != nil || !ok {
					t.Fatalf("crash %d key %d: ok=%v err=%v", b, id, ok, err)
				}
				if !bytes.Equal(v, workload.ValueFor(id+7, 48)) {
					t.Fatalf("crash %d key %d stale value", b, id)
				}
			}
		}
	}
}

func TestGCAndEvictionCycles(t *testing.T) {
	s := buildStack(t)
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := s.tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 128)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for cycle := 0; cycle < 6; cycle++ {
		// Update a random third of the keys.
		for i := 0; i < keys/3; i++ {
			id := uint64(rng.Intn(keys))
			if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id+uint64(cycle), 128)); err != nil {
				t.Fatal(err)
			}
		}
		for _, pid := range s.tree.Pages() {
			if err := s.tree.FlushPage(pid); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.st.Flush(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.st.CollectSegment(s.tree.RelocateForGC, nil); err != nil {
			t.Fatal(err)
		}
		// Age and evict.
		s.sess.Clock().Advance(100)
		if _, err := s.mgr.Sweep(); err != nil {
			t.Fatal(err)
		}
		// Everything still reachable.
		for i := 0; i < keys; i += 97 {
			if _, ok, err := s.tree.Get(workload.Key(uint64(i))); err != nil || !ok {
				t.Fatalf("cycle %d key %d: ok=%v err=%v", cycle, i, ok, err)
			}
		}
	}
	if s.st.Stats().GCRuns.Value() == 0 {
		t.Fatal("GC never ran")
	}
	if s.tree.Stats().PageEvictions.Value() == 0 {
		t.Fatal("no evictions")
	}
}

func TestConcurrentWorkloadWithEvictionSweeps(t *testing.T) {
	s := buildStack(t)
	const keys = 3000
	for i := 0; i < keys; i++ {
		if err := s.tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	// Background sweeper aging pages and evicting.
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.sess.Clock().Advance(50)
			if _, err := s.mgr.Sweep(); err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
		}
	}()
	// Foreground workers reading and writing.
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				id := uint64(rng.Intn(keys))
				if rng.Intn(3) == 0 {
					if err := s.tree.Insert(workload.Key(id), workload.ValueFor(id, 64)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				} else {
					if _, _, err := s.tree.Get(workload.Key(id)); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	sweeper.Wait()
	// Structural sanity after the storm.
	if err := s.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalStackSurvivesEvictionAndGC(t *testing.T) {
	s := buildStack(t)
	logDev := ssd.New(ssd.SamsungSSD)
	c, err := tc.New(tc.Config{DC: s.tree, LogDevice: logDev, Session: s.sess})
	if err != nil {
		t.Fatal(err)
	}
	const accounts = 500
	setup, _ := c.Begin()
	for i := uint64(0); i < accounts; i++ {
		setup.Write(workload.Key(i), []byte(fmt.Sprintf("v0-%d", i)))
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		for i := 0; i < 200; i++ {
			tx, _ := c.Begin()
			id := uint64((round * i) % accounts)
			if _, _, err := tx.Read(workload.Key(id)); err != nil {
				t.Fatal(err)
			}
			tx.Write(workload.Key(id), []byte(fmt.Sprintf("v%d-%d", round, id)))
			if err := tx.Commit(); err != nil && !errors.Is(err, tc.ErrConflict) {
				t.Fatal(err)
			}
		}
		c.GC()
		s.sess.Clock().Advance(100)
		if _, err := s.mgr.Sweep(); err != nil {
			t.Fatal(err)
		}
		for _, pid := range s.tree.Pages() {
			if err := s.tree.FlushPage(pid); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.st.Flush(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.st.CollectSegment(s.tree.RelocateForGC, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Every account readable through a fresh snapshot.
	tx, _ := c.Begin()
	for i := uint64(0); i < accounts; i++ {
		if _, ok, err := tx.Read(workload.Key(i)); err != nil || !ok {
			t.Fatalf("account %d: ok=%v err=%v", i, ok, err)
		}
	}
	// And the recovery log replays into a fresh stack.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := buildStack(t)
	if res, err := tc.Recover(logDev, fresh.tree); err != nil || res.Applied == 0 {
		t.Fatalf("recover: err=%v", err)
	}
	for i := uint64(0); i < accounts; i++ {
		if _, ok, err := fresh.tree.Get(workload.Key(i)); err != nil || !ok {
			t.Fatalf("recovered account %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestMeasuredQuantitiesFeedModelConsistently(t *testing.T) {
	// End-to-end: measure R on the stack, plug it into the model, and
	// check the derived breakeven behaves (the full loop the paper runs).
	s := buildStack(t)
	const keys = 10000
	for i := 0; i < keys; i++ {
		if err := s.tree.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm reads for P0.
	for i := 0; i < keys; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.sess.Tracker().Reset()
	for i := 0; i < 2000; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(i * 3 % keys))); err != nil {
			t.Fatal(err)
		}
	}
	p0 := s.sess.Tracker().Throughput()
	// Cold reads for PF.
	for _, pid := range s.tree.Pages() {
		if err := s.tree.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	s.sess.Tracker().Reset()
	for i := 0; i < 300; i++ {
		if _, _, err := s.tree.Get(workload.Key(uint64(i * 64 % keys))); err != nil {
			t.Fatal(err)
		}
	}
	tk := s.sess.Tracker()
	f := tk.MissFraction()
	pf := tk.Throughput()
	r, err := core.DeriveR(p0, pf, f)
	if err != nil {
		t.Fatal(err)
	}
	if r < 2 || r > 30 {
		t.Fatalf("measured R = %v, implausible", r)
	}
	costs := core.PaperCosts().WithR(r)
	if err := costs.Validate(); err != nil {
		t.Fatal(err)
	}
	ti := costs.BreakevenInterval()
	base := core.PaperCosts().BreakevenInterval()
	// Larger measured R (longer SS path than the paper's 5.8) must push
	// T_i up, and vice versa.
	if (r > 5.8) != (ti > base) {
		t.Fatalf("R=%v, T_i=%v vs base %v: direction inconsistent", r, ti, base)
	}
}
