package integration

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/wire"
)

// Metastable-failure harness: a capacity-2 store with real wall-clock
// service time behind the engine and a wire server, driven by classed
// wire clients through three phases — baseline, flash-crowd storm (4x
// the clients, plus a request-path partition blip), recovery. The same
// harness runs twice per seed:
//
//   - Adaptive: gradient limiter + retry budgets + server retry-after
//     hints. Invariants: recovery goodput re-converges to >=90% of
//     baseline goodput (cross-seed median; hard 0.80 floor per seed),
//     goodput stays above a floor *during* the storm,
//     the brownout ladder sheds strictly lowest-class-first (high sheds
//     imply normal and scan sheds), zero lost acked writes, and the
//     server's retry-after hint actually reached a client.
//   - Static trap: fixed limit wide enough to admit everything, clients
//     with aggressive attempt timeouts and no retry budget — the
//     pre-PR configuration. The admitted backlog pushes every attempt
//     past its timeout while abandoned frames keep burning store
//     capacity, so goodput collapses and stays collapsed: the run must
//     end demonstrably below the adaptive run on the identical load,
//     proving the mechanism rather than the test.
//
// CHECK_OVERLOAD=1 in scripts/check.sh runs the full 50 seeds under
// -race; plain `go test` runs a 4-seed slice (1 in -short).
var overloadFull = flag.Bool("overload.full", false, "run the full 50-seed overload chaos sweep")

const (
	// Store capacity: 2 slots x >=1ms per op caps throughput at 2000
	// ops/s no matter how coarse this kernel's sleep granularity is —
	// every sizing argument below only needs that upper bound.
	ovServiceSlots = 2
	ovService      = time.Millisecond
	ovKeys         = 16

	// Scan is the first class the ladder sacrifices, and near the
	// limiter's equilibrium the steady queue hovers around the scan
	// bound, so scan outcomes are the noisiest part of goodput — one
	// scanner keeps that noise well inside the re-convergence margin
	// while still exercising the bottom rung every phase.
	ovSteadyWriters = 8 // normal-class steady writers
	ovLowWriters    = 2 // low-class background writers
	ovHighWriters   = 2 // high-class latency-sensitive writers
	ovReaders       = 3 // normal-class readers
	ovScanners      = 1 // scan-class report readers
	ovCrowd         = 96

	// Duration-based phases: workers hammer until the deadline, so the
	// recovery window starts the instant the storm ends — re-convergence
	// speed is part of what is being measured. The static trap's
	// abandoned-work backlog in the store (~storm attempt arrivals minus
	// at most 2000/s of drain) needs several multiples of ovRecoveryDur
	// to clear, which is exactly why it cannot re-converge in the window
	// the adaptive stack does.
	ovWarmDur     = 100 * time.Millisecond
	ovBaselineDur = 300 * time.Millisecond
	ovStormDur    = 400 * time.Millisecond
	// Recovery is longer than baseline so the limiter's post-storm
	// walk-up transient (tens of ms) cannot eat the >=90% margin, while
	// staying well inside the static trap's backlog drain time.
	ovRecoveryDur = 450 * time.Millisecond

	// Generous and identical for both modes: at the adaptive operating
	// point (limit ~4, 16 steady workers) queue wait stays far below
	// this, while the static storm backlog pushes every attempt past it.
	ovAttemptTimeout = 25 * time.Millisecond
	ovWatchdog       = 120 * time.Second
)

func TestOverloadChaosSweep(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 1
	}
	if *overloadFull {
		seeds = 50
	}
	baseline := runtime.NumGoroutine()
	var mu sync.Mutex
	var ratios []float64
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				ratio := runOverloadSeed(t, seed)
				mu.Lock()
				ratios = append(ratios, ratio)
				mu.Unlock()
			}()
			select {
			case <-done:
			case <-time.After(ovWatchdog):
				buf := make([]byte, 1<<20)
				t.Fatalf("seed %d wedged past %v\n%s", seed, ovWatchdog,
					buf[:runtime.Stack(buf, true)])
			}
		})
	}
	// The >=90% re-convergence claim is asserted on the median across
	// seeds (each seed also has a hard 0.80 floor): a single seed whose
	// measurement window caught a scheduler or compile-overlap hiccup on
	// a busy runner cannot flake the gate, but a real regression shifts
	// the whole distribution and fails it.
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		if med := ratios[len(ratios)/2]; med < 0.9 {
			t.Errorf("median re-convergence %.2f < 0.90 across %d seeds (min %.2f)",
				med, len(ratios), ratios[0])
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// ovStore is the capacity-limited store: a map behind ovServiceSlots
// service slots, each op holding one slot for ovService of wall time.
// Ops past the slots queue FIFO inside the store — in-store latency
// inflates with concurrency, which is the signal the gradient limiter
// feeds on and the wasted work the static trap drowns in. Deliberately
// ctx-blind: an op whose client gave up still burns its slot, exactly
// like a real store that cannot abandon an issued device read.
type ovStore struct {
	slots chan struct{}

	mu sync.Mutex
	m  map[string][]byte
}

func newOvStore() *ovStore {
	return &ovStore{slots: make(chan struct{}, ovServiceSlots), m: make(map[string][]byte)}
}

func (s *ovStore) serve() {
	s.slots <- struct{}{}
	time.Sleep(ovService)
	<-s.slots
}

func (s *ovStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	s.serve()
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[string(key)]
	return append([]byte(nil), v...), ok, nil
}

func (s *ovStore) Put(ctx context.Context, key, val []byte) error {
	s.serve()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append([]byte(nil), val...)
	return nil
}

func (s *ovStore) Delete(ctx context.Context, key []byte) error {
	s.serve()
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, string(key))
	return nil
}

func (s *ovStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	s.serve()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, v := range s.m {
		if n >= limit {
			break
		}
		if !fn([]byte(k), v) {
			break
		}
		n++
	}
	return nil
}

func (s *ovStore) Health() *metrics.Health { return nil }
func (s *ovStore) Close() error            { return nil }

// ovBackend fronts the engine as the wire server's backend, keeps the
// acked-writes ledger, and forwards the engine's retry-after hint so
// StatusOverload responses stay advisory end to end.
type ovBackend struct {
	eng *engine.Engine

	mu      sync.Mutex
	applies map[string]bool
}

func (b *ovBackend) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return b.eng.Get(ctx, key)
}

func (b *ovBackend) Put(ctx context.Context, key, val []byte) error {
	err := b.eng.Put(ctx, key, val)
	if err == nil {
		b.mu.Lock()
		b.applies[string(val)] = true
		b.mu.Unlock()
	}
	return err
}

func (b *ovBackend) Delete(ctx context.Context, key []byte) error {
	return b.eng.Delete(ctx, key)
}

func (b *ovBackend) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return b.eng.Scan(ctx, start, limit, fn)
}

func (b *ovBackend) RetryAfterHint() time.Duration { return b.eng.RetryAfterHint() }

func (b *ovBackend) applied(val []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.applies[string(val)]
}

func ovKey(idx int) []byte { return []byte(fmt.Sprintf("ov%03d", idx)) }

func ovVal(idx int, version uint64) []byte {
	v := make([]byte, 12)
	binary.BigEndian.PutUint32(v, uint32(idx))
	binary.BigEndian.PutUint64(v[4:], version)
	return v
}

// ovPhase is one phase's client-side outcome tally. highGood counts
// successes on the high-class clients only — the storm's goodput floor
// is about the latency-sensitive tenant staying served while lower
// classes brown out.
type ovPhase struct {
	good, bad, shed atomic.Int64
	highGood        atomic.Int64
	elapsed         time.Duration
}

func (p *ovPhase) goodput() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.good.Load()) / p.elapsed.Seconds()
}

// ovRig is one mode's full stack plus the per-writer version ledgers.
type ovRig struct {
	store    *ovStore
	eng      *engine.Engine
	backend  *ovBackend
	srv      *wire.Server
	crowdNet *fault.NetInjector

	clients map[string]*wire.Client // by class name ("" = normal steady)
	crowd   *wire.Client

	issued [ovKeys]atomic.Uint64
	acked  [ovKeys]atomic.Uint64
}

// newOvRig builds the stack. adaptive selects between the PR's closed
// loop (gradient limiter, retry budgets, honored hints) and the static
// trap (wide fixed limit, budget-less aggressive retries).
func newOvRig(t *testing.T, seed int64, adaptive bool) *ovRig {
	t.Helper()
	r := &ovRig{store: newOvStore(), clients: make(map[string]*wire.Client)}

	ecfg := engine.Config{Store: r.store}
	if adaptive {
		ecfg.MaxConcurrent = 16
		ecfg.MaxQueue = 32
		ecfg.Adaptive = true
		ecfg.AdaptiveMin = 2
		ecfg.AdaptiveMax = 32
		ecfg.LimitWindow = 32
	} else {
		// The trap: the limiter is effectively disabled — a limit no load
		// in this harness can reach, so admission never sheds and never
		// paces. Every request crashes straight into the store's internal
		// FIFO, and unlike the engine's admission queue (whose waiters
		// honor the propagated request deadline, see wire.Server), the
		// store cannot abandon work it has accepted. Abandoned attempts
		// pile up there and keep burning capacity long after their
		// clients gave up — the metastable reservoir.
		ecfg.MaxConcurrent = 2048
		ecfg.MaxQueue = 4096
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	r.eng = eng
	r.backend = &ovBackend{eng: eng, applies: make(map[string]bool)}

	// The per-conn frame cap sits far above both engines' admission
	// bounds: net.Pipe is unbuffered, so a tight cap would stall frames
	// in the client instead of letting them reach admission — the
	// abandoned-work waste under test happens server-side or not at all.
	srv, err := wire.NewServer(wire.ServerConfig{
		Backend:           r.backend,
		MaxInFlight:       2048,
		WriteStallTimeout: 200 * time.Millisecond,
		DedupWindow:       4096,
	})
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	r.srv = srv

	dial := func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		srv.ServeConn(srvEnd)
		return cliEnd, nil
	}
	// The crowd dials through a seeded fault injector so the storm can
	// include a request-path partition blip.
	r.crowdNet = fault.NewNetInjector(seed + 7000)
	crowdDial := func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		srv.ServeConn(srvEnd)
		return fault.WrapConn(cliEnd, r.crowdNet), nil
	}

	mk := func(i int64, class string, inflight int, dialFn func() (net.Conn, error)) *wire.Client {
		cfg := wire.ClientConfig{
			Dial:           dialFn,
			Seed:           seed*100 + i,
			MaxInFlight:    inflight,
			AttemptTimeout: ovAttemptTimeout,
			Class:          class,
		}
		if adaptive {
			cfg.MaxRetries = 3
			cfg.RetryBase = time.Millisecond
			cfg.RetryMax = 20 * time.Millisecond
			cfg.RetryBudget = 0.2
		} else {
			// Budget-less herd retries on a tight base: the amplifier.
			cfg.MaxRetries = 6
			cfg.RetryBase = 500 * time.Microsecond
			cfg.RetryMax = 2 * time.Millisecond
		}
		cl, err := wire.NewClient(cfg)
		if err != nil {
			t.Fatalf("client class %q: %v", class, err)
		}
		return cl
	}
	for i, class := range []string{"normal", "low", "high", "scan"} {
		r.clients[class] = mk(int64(i), class, 64, dial)
	}
	r.crowd = mk(9, "normal", 2*ovCrowd, crowdDial)
	return r
}

func (r *ovRig) close() {
	for _, cl := range r.clients {
		cl.Close()
	}
	r.crowd.Close()
	r.srv.Close()
	r.eng.Close()
}

// write issues one versioned write on the worker's own key and records
// the ack. Single writer per key, next version only after the previous
// settled, so acked-implies-applied reconciles exactly.
func (r *ovRig) write(ctx context.Context, cl *wire.Client, idx int, ph *ovPhase, high bool) {
	version := r.issued[idx].Add(1)
	err := cl.Put(ctx, ovKey(idx), ovVal(idx, version))
	ovTally(err, ph)
	if err == nil {
		r.acked[idx].Store(version)
		if high {
			ph.highGood.Add(1)
		}
	}
}

func ovTally(err error, ph *ovPhase) {
	switch {
	case err == nil:
		ph.good.Add(1)
	case isOverloadErr(err):
		ph.shed.Add(1)
	default:
		ph.bad.Add(1)
	}
}

func isOverloadErr(err error) bool {
	return err != nil && (errors.Is(err, engine.ErrOverload) || errors.Is(err, wire.ErrUnavailable))
}

// runSteady drives the steady tenant set — classed writers, readers,
// and scanners — until the duration elapses, tallying into ph. The
// elapsed recorded for goodput includes the tail ops that straddle the
// deadline, so a backlogged system cannot flatter its rate.
func (r *ovRig) runSteady(dur time.Duration, ph *ovPhase) {
	ctx := context.Background()
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	worker := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				fn()
			}
		}()
	}
	start := time.Now()
	for w := 0; w < ovSteadyWriters; w++ {
		idx := w
		worker(func() { r.write(ctx, r.clients["normal"], idx, ph, false) })
	}
	for w := 0; w < ovLowWriters; w++ {
		idx := ovSteadyWriters + w
		worker(func() { r.write(ctx, r.clients["low"], idx, ph, false) })
	}
	for w := 0; w < ovHighWriters; w++ {
		idx := ovSteadyWriters + ovLowWriters + w
		worker(func() { r.write(ctx, r.clients["high"], idx, ph, true) })
	}
	for w := 0; w < ovReaders; w++ {
		rng := rand.New(rand.NewSource(int64(w) * 31))
		worker(func() {
			_, _, err := r.clients["normal"].Get(ctx, ovKey(rng.Intn(ovKeys)))
			ovTally(err, ph)
		})
	}
	for w := 0; w < ovScanners; w++ {
		worker(func() {
			err := r.clients["scan"].Scan(ctx, ovKey(0), 8, func(k, v []byte) bool { return true })
			ovTally(err, ph)
		})
	}
	wg.Wait()
	ph.elapsed = time.Since(start)
}

// runStorm runs the steady set and the flash crowd concurrently for the
// storm duration; the crowd partitions its request path partway through.
// Only the steady tenants' outcomes land in ph — the goodput floor is
// about what the paying traffic still gets while the crowd rages.
func (r *ovRig) runStorm(rng *rand.Rand, ph *ovPhase) {
	var crowdWG sync.WaitGroup
	crowdPh := &ovPhase{} // crowd outcomes tallied separately, unasserted
	ctx := context.Background()
	deadline := time.Now().Add(ovStormDur)
	partitionAt := time.Now().Add(ovStormDur / 3)
	for w := 0; w < ovCrowd; w++ {
		crowdWG.Add(1)
		go func(w int) {
			defer crowdWG.Done()
			crng := rand.New(rand.NewSource(int64(w)*977 + 5))
			for time.Now().Before(deadline) {
				if w == 0 && !partitionAt.IsZero() && time.Now().After(partitionAt) {
					partitionAt = time.Time{}
					r.crowdNet.PartitionFor(int64(10 + rng.Intn(10)))
				}
				_, _, err := r.crowd.Get(ctx, ovKey(crng.Intn(ovKeys)))
				ovTally(err, crowdPh)
			}
		}(w)
	}
	r.runSteady(ovStormDur, ph)
	crowdWG.Wait()
	r.crowdNet.Heal()
}

// runOvMode runs warmup/baseline/storm/recovery for one mode. Recovery
// is measured from the instant the storm's drivers stop: how fast the
// stack sheds its backlog IS the re-convergence property.
func runOvMode(t *testing.T, seed int64, adaptive bool) (r *ovRig, baseline, storm, recovery *ovPhase) {
	r = newOvRig(t, seed, adaptive)
	rng := rand.New(rand.NewSource(seed))

	r.runSteady(ovWarmDur, &ovPhase{}) // warm caches, learn the latency floor
	baseline = &ovPhase{}
	r.runSteady(ovBaselineDur, baseline)

	storm = &ovPhase{}
	r.runStorm(rng, storm)

	recovery = &ovPhase{}
	r.runSteady(ovRecoveryDur, recovery)
	return r, baseline, storm, recovery
}

func runOverloadSeed(t *testing.T, seed int64) float64 {
	// --- Adaptive: the PR's closed loop must re-converge. ---
	r, base, storm, recov := runOvMode(t, seed, true)

	if base.good.Load() == 0 {
		t.Fatalf("seed %d: adaptive baseline made no progress", seed)
	}
	// Goodput floor during the storm: the latency-sensitive high-class
	// tenant keeps getting real service while lower classes brown out —
	// degradation, not outage.
	if storm.highGood.Load() < 5 {
		t.Errorf("seed %d: storm goodput floor broken: high-class good=%d (total good=%d bad=%d shed=%d)",
			seed, storm.highGood.Load(), storm.good.Load(), storm.bad.Load(), storm.shed.Load())
	}
	// Re-convergence: recovery goodput back near pre-storm goodput, in a
	// window that opens the instant the storm stops. Per-seed this is a
	// hard 0.80 floor; the >=0.90 claim is enforced on the cross-seed
	// median by the parent (one noisy measurement window must not flake
	// the sweep, a real regression moves every seed).
	adaptiveRatio := recov.goodput() / base.goodput()
	if adaptiveRatio < 0.8 {
		t.Errorf("seed %d: adaptive failed to re-converge: recovery %.0f ops/s vs baseline %.0f ops/s (%.2f)",
			seed, recov.goodput(), base.goodput(), adaptiveRatio)
	}

	// Brownout ladder: sheds walk strictly upward from the lowest class.
	lim := r.eng.Limiter().Stats()
	shedScan, shedLow := lim.ShedScan.Value(), lim.ShedLow.Value()
	shedNormal, shedHigh := lim.ShedNormal.Value(), lim.ShedHigh.Value()
	if shedHigh > 0 && (shedNormal == 0 || shedScan == 0) {
		t.Errorf("seed %d: ladder inverted: high shed %d with normal=%d scan=%d low=%d",
			seed, shedHigh, shedNormal, shedScan, shedLow)
	}
	if shedNormal > 0 && shedScan == 0 {
		t.Errorf("seed %d: ladder inverted: normal shed %d with zero scan sheds", seed, shedNormal)
	}

	// Zero lost acked writes: every key's highest acked version was
	// applied by the backend.
	for idx := 0; idx < ovKeys; idx++ {
		if high := r.acked[idx].Load(); high > 0 && !r.backend.applied(ovVal(idx, high)) {
			t.Fatalf("seed %d: key %d version %d acked but never applied", seed, idx, high)
		}
	}

	// The closed loop is live: the server advised at least one client
	// (hints only flow when something was shed server-side).
	if lim.ShedScan.Value()+lim.ShedLow.Value()+lim.ShedNormal.Value()+lim.ShedHigh.Value() > 0 {
		hinted := false
		for _, cl := range r.clients {
			if cl.Stats().HintedMicros.Value() > 0 {
				hinted = true
				break
			}
		}
		if !hinted && r.crowd.Stats().HintedMicros.Value() == 0 {
			t.Errorf("seed %d: server shed but no client ever saw a retry-after hint", seed)
		}
	}
	r.close()

	// --- Static trap: the identical harness, limiter disabled, must
	// demonstrably fail to re-converge in the same window. Its baseline
	// is healthy (load fits the store), so the collapse is entirely the
	// storm's abandoned-frame backlog, which takes far longer than the
	// recovery window to drain at <=2000 ops/s.
	rs, sbase, _, srecov := runOvMode(t, seed, false)
	if sbase.good.Load() == 0 {
		t.Fatalf("seed %d: static baseline made no progress", seed)
	}
	staticRatio := srecov.goodput() / sbase.goodput()
	if staticRatio > 0.5*adaptiveRatio {
		t.Errorf("seed %d: static trap unexpectedly re-converged: static recovery/baseline %.2f vs adaptive %.2f",
			seed, staticRatio, adaptiveRatio)
	}
	rs.close()

	t.Logf("adaptive %.0f->%.0f ops/s (%.2f), storm high-good=%d shed[s/l/n/h]=%d/%d/%d/%d; static %.0f->%.0f ops/s (%.2f)",
		base.goodput(), recov.goodput(), adaptiveRatio, storm.highGood.Load(),
		shedScan, shedLow, shedNormal, shedHigh,
		sbase.goodput(), srecov.goodput(), staticRatio)
	return adaptiveRatio
}
