package integration

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/masstree"
	"costperf/internal/wire"
)

// Chaos-through-the-network harness: real connections (net.Pipe wrapped in
// fault.Conn on both ends, each direction with its own seeded injector)
// between resilient wire clients and a wire server fronting the engine.
// The network drops, duplicates, reorders, half-closes, and stalls frames;
// mid-run a partition eats a burst of requests and triggers a retry storm.
// Invariants checked per seed:
//
//   - Exactly-once writes: every (key, version) the backend applied was
//     applied exactly once, even though clients retried through drops,
//     partitions, and evicted connections — the server's dedup window
//     absorbs the duplicates.
//   - Zero lost acked writes: every version a client saw acknowledged was
//     applied, and each key's final stored version sits between the
//     highest acked and highest issued version for that key.
//   - Read monotonicity: a read never observes a version older than the
//     highest version acked before the read started.
//   - Bounded retry amplification: frames sent stay within a small
//     constant factor of logical operations, even across the induced
//     retry storm.
//   - Clean teardown: the server drains gracefully (in-flight work
//     finishes and acks) and no goroutines survive the sweep.
//
// CHECK_WIRE=1 in scripts/check.sh runs the full 50 seeds under -race;
// plain `go test` runs a 10-seed slice (3 in -short).
var wireFull = flag.Bool("wire.full", false, "run the full 50-seed wire chaos sweep")

const (
	wireChaosKeys      = 24
	wireChaosWriters   = 4
	wireChaosReaders   = 2
	wireChaosOpsPerWkr = 80
	wireChaosWatchdog  = 90 * time.Second
)

func TestWireChaosSweep(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	if *wireFull {
		seeds = 50
	}
	baseline := runtime.NumGoroutine()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				runWireChaosSeed(t, seed)
			}()
			select {
			case <-done:
			case <-time.After(wireChaosWatchdog):
				buf := make([]byte, 1<<20)
				t.Fatalf("seed %d wedged past %v\n%s", seed, wireChaosWatchdog,
					buf[:runtime.Stack(buf, true)])
			}
		})
	}
	// The whole sweep must leak nothing: every server Close waits for its
	// goroutines, every client Close fails its pendings and joins its
	// receiver.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// wireCounting wraps the engine as the server's backend and counts
// successful applies per exact value, which encodes (key index, version) —
// the ledger the exactly-once assertion reconciles against.
type wireCounting struct {
	eng *engine.Engine

	mu      sync.Mutex
	applies map[string]int
}

func (b *wireCounting) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return b.eng.Get(ctx, key)
}

func (b *wireCounting) Put(ctx context.Context, key, val []byte) error {
	err := b.eng.Put(ctx, key, val)
	if err == nil {
		b.mu.Lock()
		b.applies[string(val)]++
		b.mu.Unlock()
	}
	return err
}

func (b *wireCounting) Delete(ctx context.Context, key []byte) error {
	return b.eng.Delete(ctx, key)
}

func (b *wireCounting) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return b.eng.Scan(ctx, start, limit, fn)
}

func wireKey(idx int) []byte { return []byte(fmt.Sprintf("w%04d", idx)) }

func wireVal(idx int, version uint64) []byte {
	v := make([]byte, 12)
	binary.BigEndian.PutUint32(v, uint32(idx))
	binary.BigEndian.PutUint64(v[4:], version)
	return v
}

func decodeWireVal(v []byte) (idx int, version uint64, ok bool) {
	if len(v) != 12 {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(v)), binary.BigEndian.Uint64(v[4:]), true
}

func runWireChaosSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// Engine over MassTree, tight enough that pipelined load queues and
	// occasionally sheds — overload must cross the wire typed, not wedge.
	tree := masstree.New(nil)
	eng, err := engine.New(engine.Config{
		Store:         engine.WrapMassTree(tree),
		MaxConcurrent: 4,
		MaxQueue:      8,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	backend := &wireCounting{eng: eng, applies: make(map[string]int)}

	srv, err := wire.NewServer(wire.ServerConfig{
		Backend:           backend,
		MaxInFlight:       8,
		WriteStallTimeout: 100 * time.Millisecond,
		DedupWindow:       4096,
	})
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}

	// Each direction gets its own seeded injector: requests and responses
	// fail independently, like the two halves of a real socket.
	reqInj := fault.NewNetInjector(seed)
	respInj := fault.NewNetInjector(seed + 1000)
	reqInj.SetRates(0.03*rng.Float64(), 0.03*rng.Float64(), 0.03*rng.Float64())
	respInj.SetRates(0.03*rng.Float64(), 0.03*rng.Float64(), 0.03*rng.Float64())
	reqInj.SetConnFaults(0.002, 0.002)
	respInj.SetConnFaults(0.002, 0.002)

	dial := func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		srv.ServeConn(fault.WrapConn(srvEnd, respInj))
		return fault.WrapConn(cliEnd, reqInj), nil
	}

	newClient := func(i int) *wire.Client {
		cl, err := wire.NewClient(wire.ClientConfig{
			Dial:           dial,
			Seed:           seed*100 + int64(i),
			MaxInFlight:    16,
			AttemptTimeout: 150 * time.Millisecond,
			MaxRetries:     8,
			RetryBase:      2 * time.Millisecond,
			RetryMax:       50 * time.Millisecond,
			HedgeAfter:     40 * time.Millisecond,
			ConsecTimeouts: 2,
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		return cl
	}
	writerCl, readerCl := newClient(0), newClient(1)

	var (
		issued [wireChaosKeys]atomic.Uint64 // highest version handed to a Put
		acked  [wireChaosKeys]atomic.Uint64 // highest version whose Put acked
		// dirty marks keys where some Put failed client-side: the outcome is
		// unknown and a late in-flight frame may still apply after newer
		// writes (the store is last-writer-wins), so ordering assertions
		// weaken to bounds for those keys. Acked⇒applied and exactly-once
		// hold regardless.
		dirty [wireChaosKeys]atomic.Bool
	)
	ctx := context.Background()
	var wg sync.WaitGroup

	// Writers: each owns a disjoint key slice, versions strictly increasing
	// per key, next version issued only after the previous settled — so the
	// happens-before chain apply(v) < ack(v) < issue(v+1) holds and the
	// final stored version must land in [acked, issued].
	keysPerWriter := wireChaosKeys / wireChaosWriters
	for w := 0; w < wireChaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			lo := w * keysPerWriter
			for op := 0; op < wireChaosOpsPerWkr; op++ {
				// Worker 0 detonates the retry storm a third of the way in:
				// the partition eats the next burst of requests, every
				// in-flight op times out and retries into the dead window.
				if w == 0 && op == wireChaosOpsPerWkr/3 {
					reqInj.PartitionFor(int64(20 + wrng.Intn(20)))
				}
				idx := lo + wrng.Intn(keysPerWriter)
				version := issued[idx].Add(1)
				// One writer per key and issue-after-settle: acked moves in
				// version order, so a plain store is safe.
				if err := writerCl.Put(ctx, wireKey(idx), wireVal(idx, version)); err == nil {
					acked[idx].Store(version)
				} else {
					dirty[idx].Store(true)
				}
			}
		}(w)
	}

	// Readers: monotonicity — a read must never observe a version older
	// than the highest acked before it started, nor newer than issued.
	for r := 0; r < wireChaosReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			for op := 0; op < wireChaosOpsPerWkr; op++ {
				idx := rrng.Intn(wireChaosKeys)
				floor := acked[idx].Load()
				v, ok, err := readerCl.Get(ctx, wireKey(idx))
				if err != nil || !ok {
					continue // typed failures and misses are legitimate under chaos
				}
				gotIdx, gotVer, decOK := decodeWireVal(v)
				if !decOK || gotIdx != idx {
					t.Errorf("seed %d: read of key %d returned key %d (decode ok=%v)", seed, idx, gotIdx, decOK)
					return
				}
				if gotVer < floor && !dirty[idx].Load() {
					t.Errorf("seed %d key %d: read version %d < acked floor %d", seed, idx, gotVer, floor)
					return
				}
				if ceil := issued[idx].Load(); gotVer > ceil {
					t.Errorf("seed %d key %d: read version %d > issued %d", seed, idx, gotVer, ceil)
					return
				}
				if op%10 == 0 {
					readerCl.Scan(ctx, wireKey(0), 5, func(k, v []byte) bool { return true })
				}
			}
		}(r)
	}

	wg.Wait()
	reqInj.Heal()

	// Graceful drain: whatever is still settling finishes and acks, then
	// every connection closes.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = srv.Drain(dctx)
	dcancel()
	if err != nil {
		t.Fatalf("seed %d: drain: %v (server %v)", seed, err, srv.Stats())
	}

	// --- Reconciliation ---

	backend.mu.Lock()
	applies := backend.applies
	backend.mu.Unlock()

	// Exactly-once: no (key, version) applied twice, storm or not.
	for val, n := range applies {
		if n != 1 {
			idx, ver, _ := decodeWireVal([]byte(val))
			t.Fatalf("seed %d: key %d version %d applied %d times", seed, idx, ver, n)
		}
	}

	// Zero lost acked writes, and (for keys whose every Put settled with a
	// known outcome) the final state sits between the highest acked and
	// highest issued version.
	for idx := 0; idx < wireChaosKeys; idx++ {
		high := acked[idx].Load()
		if high > 0 && applies[string(wireVal(idx, high))] == 0 {
			t.Fatalf("seed %d: key %d version %d acked but never applied", seed, idx, high)
		}
		v, ok := tree.Get(wireKey(idx))
		if !ok {
			if high > 0 {
				t.Fatalf("seed %d: key %d has acked version %d but no stored value", seed, idx, high)
			}
			continue
		}
		_, stored, decOK := decodeWireVal(v)
		if !decOK {
			t.Fatalf("seed %d: key %d stored value undecodable", seed, idx)
		}
		if stored > issued[idx].Load() {
			t.Fatalf("seed %d: key %d stored version %d > issued %d",
				seed, idx, stored, issued[idx].Load())
		}
		if stored < high && !dirty[idx].Load() {
			t.Fatalf("seed %d: key %d stored version %d < acked %d with no failed writes",
				seed, idx, stored, high)
		}
	}

	// Bounded retry amplification: across drops, a partition burst, and
	// connection evictions, sends stay within a small factor of ops.
	for name, cl := range map[string]*wire.Client{"writer": writerCl, "reader": readerCl} {
		st := cl.Stats()
		ops, sent := st.Ops.Value(), st.Sent.Value()
		if ops == 0 {
			t.Fatalf("seed %d: %s client did nothing", seed, name)
		}
		if sent > 6*ops {
			t.Fatalf("seed %d: %s retry amplification %d sends / %d ops exceeds 6x (%v)",
				seed, name, sent, ops, st)
		}
	}

	writerCl.Close()
	readerCl.Close()
	srv.Close()
	eng.Close()

	if srv.Stats().CurConns.Value() != 0 {
		t.Fatalf("seed %d: connections survived teardown: %v", seed, srv.Stats())
	}
}
