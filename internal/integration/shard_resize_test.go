package integration

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/shard"
	"costperf/internal/tc"
)

// resizeFull runs the full 100-seed resize soak (scripts/check.sh sets
// it under the CHECK_RESIZE=1 gate); the default keeps tier-1 runs quick.
var resizeFull = flag.Bool("resize.full", false, "run the full 100-seed shard-resize soak")

// resizeChaos selects what a seed throws at the resize arc. Each run is
// a split followed by a merge of the children; a seed crashes one of the
// two state machines at one of its five crashable phase boundaries
// (prepare..seal — a crash after install is a completed resize), or runs
// crash-free. Every seed also runs a lossy, periodically partitioned
// stream link and concurrent writers hitting the resizing range.
type resizeChaos struct {
	splitCrash shard.Phase // boundary to die at during the split; -1 = none
	mergeCrash shard.Phase // boundary to die at during the merge; -1 = none
}

func (c resizeChaos) String() string {
	switch {
	case c.splitCrash >= 0:
		return "split-crash-" + c.splitCrash.String()
	case c.mergeCrash >= 0:
		return "merge-crash-" + c.mergeCrash.String()
	default:
		return "nocrash"
	}
}

// resizeChaosForSeed cycles 5 split boundaries + 5 merge boundaries + 1
// crash-free control, so a 100-seed sweep hits every boundary ~9x.
func resizeChaosForSeed(seed int64) resizeChaos {
	switch k := seed % 11; {
	case k < 5:
		return resizeChaos{splitCrash: shard.Phase(k), mergeCrash: -1}
	case k < 10:
		return resizeChaos{splitCrash: -1, mergeCrash: shard.Phase(k - 5)}
	default:
		return resizeChaos{splitCrash: -1, mergeCrash: -1}
	}
}

// TestShardResizeChaosSweep is the acceptance soak for elastic resize:
// a seeded sweep where every run splits one shard and merges the
// children back while concurrent writers keep hitting the moving range,
// the stream link drops, duplicates, reorders, and periodically
// partitions, and most seeds kill one of the two state machines at a
// phase boundary and resume it blind. After the arc it asserts
//
//   - zero lost acked writes: every write the router acknowledged reads
//     back byte-identical,
//   - exactly-once application: the full scatter-gather dump equals the
//     acked-state oracle exactly, in global order,
//   - every stale owner is fenced: the split source and both merge
//     sources reject commits with ErrMoved forever,
//   - bounded movement: a hash moves owner between map epochs iff it
//     lies inside the split range — the ~1/N fraction the map promises,
//   - writers only ever failed with the moved-class family, and only on
//     keys inside the resizing range.
//
// CHECK_RESIZE=1 in scripts/check.sh runs the full 100 seeds under
// -race; plain `go test` runs an 11-seed slice (3 in -short).
func TestShardResizeChaosSweep(t *testing.T) {
	seeds := 11
	if testing.Short() {
		seeds = 3
	}
	if *resizeFull {
		seeds = 100
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		chaos := resizeChaosForSeed(seed)
		t.Run(fmt.Sprintf("seed%03d-%s", seed, chaos), func(t *testing.T) {
			t.Parallel()
			runShardResizeSeed(t, seed, chaos)
		})
	}
}

const resizeShards = 4

// driveResize pushes one resumable resize state machine to completion
// through injected crashes and partition-refused dials.
func driveResize(t *testing.T, ctx context.Context, label string,
	run func(context.Context) error, done func() bool) {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 200 && !done(); attempt++ {
		if lastErr = run(ctx); lastErr != nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !done() {
		t.Fatalf("%s never completed; last error: %v", label, lastErr)
	}
}

func runShardResizeSeed(t *testing.T, seed int64, chaos resizeChaos) {
	rng := rand.New(rand.NewSource(seed))
	r, err := shard.New(shard.Config{Shards: resizeShards, Seed: seed})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer r.Close()
	ctx := context.Background()

	// oracle records only acknowledged state.
	oracle := map[string][]byte{}
	var omu sync.Mutex
	for i := 0; i < 200; i++ {
		k, v := []byte(fmt.Sprintf("init%04d", i)), []byte(fmt.Sprintf("seed%d-v%d", seed, i))
		if err := r.Put(ctx, k, v); err != nil {
			t.Fatalf("preload: %v", err)
		}
		oracle[string(k)] = v
	}

	// The resizing range: the source shard's slice of the hash space.
	// The split moves exactly this range to the children and the merge
	// moves it back to one slot, so it bounds both operations' blast
	// radius for the whole run.
	srcSlot := int(seed) % resizeShards
	before := r.Map()
	srcIdx := -1
	for i, e := range before.Entries {
		if e.Slot == srcSlot {
			srcIdx = i
		}
	}
	lo, hi := before.Range(srcIdx)

	// Writers own disjoint key slices and write monotonically increasing
	// versions. A write may fail only with the fenced-owner family — and
	// only when its key hashes into the resizing range; those writes are
	// guaranteed un-committed, so the oracle keeps the prior version.
	const writers = 3
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			for version := 0; !stop.Load(); version++ {
				key := []byte(fmt.Sprintf("w%d-k%02d", w, wrng.Intn(40)))
				val := []byte(fmt.Sprintf("w%d-s%d-v%06d", w, seed, version))
				err := r.Put(ctx, key, val)
				if err == nil {
					omu.Lock()
					oracle[string(key)] = val
					omu.Unlock()
					continue
				}
				if !errors.Is(err, shard.ErrMoved) && !errors.Is(err, engine.ErrClosed) && !errors.Is(err, tc.ErrClosed) {
					errCh <- fmt.Errorf("writer %d key %s: unexpected error %w", w, key, err)
					return
				}
				if !shard.InRange(shard.Hash(key), lo, hi) {
					errCh <- fmt.Errorf("writer %d: error %v on key %s outside the resizing range", w, err, key)
					return
				}
			}
		}(w)
	}

	// Every seed streams over a lossy link that partitions in bounded,
	// healed episodes while either state machine is in flight.
	link := fault.NewNetInjector(seed)
	link.SetRates(0.05*rng.Float64(), 0.05*rng.Float64(), 0.05*rng.Float64())
	errCrash := errors.New("injected crash")
	partition := func(done func() bool) <-chan struct{} {
		ch := make(chan struct{})
		go func() {
			defer close(ch)
			prng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for !done() {
				time.Sleep(time.Duration(1+prng.Intn(3)) * time.Millisecond)
				link.Partition()
				time.Sleep(time.Duration(1+prng.Intn(2)) * time.Millisecond)
				link.Heal()
			}
			link.Heal()
		}()
		return ch
	}

	// ---- Split, crashed and resumed blind. ----
	var splitCrashed atomic.Bool
	s, err := r.Split(shard.SplitConfig{
		Shard: srcSlot,
		Net:   link,
		OnPhase: func(ph shard.Phase) error {
			if chaos.splitCrash >= 0 && ph == chaos.splitCrash && !splitCrashed.Swap(true) {
				return errCrash
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	partDone := partition(s.Done)
	driveResize(t, ctx, "split", s.Run, s.Done)
	<-partDone
	if chaos.splitCrash >= 0 && !splitCrashed.Load() {
		t.Fatalf("split crash at %v never fired", chaos.splitCrash)
	}
	low, high := s.Slots()

	// Bounded movement: between the epoch-0 and epoch-1 maps, a hash
	// changes owner iff it lies in the split range — so the moved
	// fraction is exactly the range's share of the space, ≈1/N.
	after := r.Map()
	if after.Epoch != 1 {
		t.Fatalf("post-split epoch = %d, want 1", after.Epoch)
	}
	for i := 0; i < 1<<14; i++ {
		h := uint64(i) << 50
		moved := before.Slot(h) != after.Slot(h)
		if moved != shard.InRange(h, lo, hi) {
			t.Fatalf("hash %#x: moved=%v, inside split range=%v", h, moved, shard.InRange(h, lo, hi))
		}
	}

	// ---- Merge the children back, crashed and resumed blind. ----
	var mergeCrashed atomic.Bool
	m, err := r.Merge(shard.MergeConfig{
		Left:  low,
		Right: high,
		Net:   link,
		OnPhase: func(ph shard.Phase) error {
			if chaos.mergeCrash >= 0 && ph == chaos.mergeCrash && !mergeCrashed.Swap(true) {
				return errCrash
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	partDone = partition(m.Done)
	driveResize(t, ctx, "merge", m.Run, m.Done)
	<-partDone
	if chaos.mergeCrash >= 0 && !mergeCrashed.Load() {
		t.Fatalf("merge crash at %v never fired", chaos.mergeCrash)
	}

	// Let the writers land a few post-resize versions, then stop them.
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if got := r.MapEpoch(); got != 2 {
		t.Fatalf("map epoch = %d, want 2", got)
	}
	if got := r.Stats().Splits.Value(); got != 1 {
		t.Fatalf("splits = %d, want 1", got)
	}
	if got := r.Stats().Merges.Value(); got != 1 {
		t.Fatalf("merges = %d, want 1", got)
	}
	if got := r.Shards(); got != resizeShards {
		t.Fatalf("shards = %d, want %d", got, resizeShards)
	}

	// Every stale owner is fenced forever: the split source and both
	// merge sources reject commits with ErrMoved.
	lt, rt := m.SourceTCs()
	for name, src := range map[string]*tc.TC{
		"split-source": s.SourceTC(), "merge-left": lt, "merge-right": rt,
	} {
		tx, err := src.Begin()
		if err != nil {
			t.Fatalf("begin on fenced %s: %v", name, err)
		}
		if err := tx.Write([]byte("zombie"), []byte("write")); err != nil {
			t.Fatalf("stage write on fenced %s: %v", name, err)
		}
		if err := tx.Commit(); !errors.Is(err, shard.ErrMoved) {
			t.Fatalf("commit on fenced %s = %v, want ErrMoved", name, err)
		}
	}

	// Zero lost acked writes: every acknowledged key reads back
	// byte-identical through the router.
	omu.Lock()
	defer omu.Unlock()
	for k, want := range oracle {
		got, ok, err := r.Get(ctx, []byte(k))
		if err != nil || !ok {
			t.Fatalf("acked key %s unreadable after resize: ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s = %q, want %q", k, got, want)
		}
	}

	// Exactly-once application: the full scatter-gather dump matches the
	// oracle exactly — nothing extra, nothing stale, globally ordered.
	dump := map[string][]byte{}
	var prev []byte
	err = r.Scan(ctx, nil, 0, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("scan order violated: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		dump[string(k)] = append([]byte(nil), v...)
		return true
	})
	if err != nil {
		t.Fatalf("full scan after resize: %v", err)
	}
	if len(dump) != len(oracle) {
		t.Fatalf("store holds %d keys, oracle %d", len(dump), len(oracle))
	}
	for k, want := range oracle {
		if !bytes.Equal(dump[k], want) {
			t.Fatalf("dumped key %s = %q, want %q", k, dump[k], want)
		}
	}
}
