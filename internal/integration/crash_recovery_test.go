// Crash-recovery property harness: for each store in the stack (Bw-tree
// over LLAMA, the TC recovery log, and the LSM tree) run a deterministic
// workload with explicit commit points, crash the simulated device at 100
// seeded write indexes (persisting only a seeded prefix of the crashed
// write, like power loss mid-flush), then repair, reopen from the device
// alone, and check the recovered state is exactly a committed prefix:
// everything committed before the crash is present and correct, anything
// newer is either absent or intact — never garbage, never partial.
package integration_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"costperf/internal/bwtree"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/ssd"
	"costperf/internal/tc"
	"costperf/internal/workload"
)

const crashSeeds = 100

// crashPoint spreads the 100 seeds over the workload's device writes and
// varies how much of the crashed write survives.
func crashPoint(seed int, totalWrites int64) (nth int64, keep int) {
	if totalWrites < 1 {
		totalWrites = 1
	}
	nth = 1 + int64(seed)*(totalWrites-1)/int64(crashSeeds-1)
	keep = (seed * 37) % 2048
	return nth, keep
}

// --- Bw-tree over LLAMA log store -----------------------------------------

const (
	btBatches = 4
	btPerB    = 50
	btHotKey  = uint64(99999)
)

func btValue(id uint64) []byte { return workload.ValueFor(id, 64) }
func btHotVal(b int) []byte    { return workload.ValueFor(9000+uint64(b), 64) }
func btKey(b, i int) uint64    { return uint64(b*btPerB + i) }
func openLogstore(dev ssd.Dev) (*logstore.Store, error) {
	return logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
}

// runBwtreeWorkload applies batches of inserts plus a hot-key update, with
// FlushAll as the per-batch commit point. It returns the index of the last
// batch whose commit succeeded (-1 if none).
func runBwtreeWorkload(dev ssd.Dev) int {
	st, err := openLogstore(dev)
	if err != nil {
		return -1
	}
	tree, err := bwtree.New(bwtree.Config{Store: st})
	if err != nil {
		return -1
	}
	committed := -1
	for b := 0; b < btBatches; b++ {
		for i := 0; i < btPerB; i++ {
			id := btKey(b, i)
			if err := tree.Insert(workload.Key(id), btValue(id)); err != nil {
				return committed
			}
		}
		if err := tree.Insert(workload.Key(btHotKey), btHotVal(b)); err != nil {
			return committed
		}
		if err := tree.FlushAll(); err != nil {
			return committed
		}
		committed = b
	}
	return committed
}

func TestCrashRecoveryBwtree(t *testing.T) {
	// Dry run without faults to learn the workload's device write count.
	dryDev := ssd.New(ssd.SamsungSSD)
	dryInj := fault.NewInjector(0)
	dryDev.SetFaultInjector(dryInj)
	if got := runBwtreeWorkload(dryDev); got != btBatches-1 {
		t.Fatalf("faultless dry run committed %d batches, want %d", got+1, btBatches)
	}
	_, totalWrites := dryInj.Counts()

	for seed := 0; seed < crashSeeds; seed++ {
		nth, keep := crashPoint(seed, totalWrites)
		dev := ssd.New(ssd.SamsungSSD)
		inj := fault.NewInjector(int64(seed))
		dev.SetFaultInjector(inj)
		inj.CrashAtWrite(nth, keep)

		committed := runBwtreeWorkload(dev)
		if !inj.Crashed() {
			t.Fatalf("seed %d: crash point %d never fired", seed, nth)
		}
		inj.Repair()

		st, err := openLogstore(dev)
		if err != nil {
			t.Fatalf("seed %d: reopen log store: %v", seed, err)
		}
		tree, err := bwtree.Open(bwtree.Config{Store: st})
		if errors.Is(err, bwtree.ErrNoCheckpoint) {
			if committed >= 0 {
				t.Fatalf("seed %d: committed batch %d but no checkpoint survived", seed, committed)
			}
			continue // crash before the first commit: empty prefix is correct
		}
		if err != nil {
			t.Fatalf("seed %d: reopen tree: %v", seed, err)
		}

		// Committed batches must be fully present and correct; newer keys
		// may or may not have been checkpointed by a torn FlushAll, but a
		// present key must never carry a wrong value.
		for b := 0; b < btBatches; b++ {
			for i := 0; i < btPerB; i++ {
				id := btKey(b, i)
				v, ok, err := tree.Get(workload.Key(id))
				if err != nil {
					t.Fatalf("seed %d: get %d: %v", seed, id, err)
				}
				if b <= committed && !ok {
					t.Fatalf("seed %d: committed key %d lost (committed batch %d)", seed, id, committed)
				}
				if ok && !bytes.Equal(v, btValue(id)) {
					t.Fatalf("seed %d: key %d recovered with wrong value", seed, id)
				}
			}
		}
		if committed >= 0 {
			// The hot key was overwritten every batch: recovery must yield
			// one of the versions written at or after the last commit.
			v, ok, err := tree.Get(workload.Key(btHotKey))
			if err != nil || !ok {
				t.Fatalf("seed %d: hot key lost: ok=%v err=%v", seed, ok, err)
			}
			valid := false
			for b := committed; b < btBatches; b++ {
				if bytes.Equal(v, btHotVal(b)) {
					valid = true
					break
				}
			}
			if !valid {
				t.Fatalf("seed %d: hot key recovered with stale or corrupt value", seed)
			}
		}
	}
}

// --- TC recovery log -------------------------------------------------------

type memDC struct{ m map[string][]byte }

func newMemDC() *memDC { return &memDC{m: map[string][]byte{}} }

func (d *memDC) Get(key []byte) ([]byte, bool, error) {
	v, ok := d.m[string(key)]
	return v, ok, nil
}
func (d *memDC) BlindWrite(key, val []byte) error {
	d.m[string(key)] = append([]byte(nil), val...)
	return nil
}
func (d *memDC) Delete(key []byte) error {
	delete(d.m, string(key))
	return nil
}

const tcTxns = 25

func tcVal(txn, j int) []byte { return workload.ValueFor(uint64(1000+txn*10+j), 32) }
func tcKey(txn, j int) []byte { return workload.Key(uint64(txn*2 + j)) }

// runTCWorkload commits transactions of two writes each, flushing the
// recovery log after every commit. Returns the last transaction index
// (0-based) whose log flush succeeded, or -1.
func runTCWorkload(dev *ssd.Device) int {
	c, err := tc.New(tc.Config{DC: newMemDC(), LogDevice: dev, LogBufferBytes: 1 << 12})
	if err != nil {
		return -1
	}
	flushed := -1
	for i := 0; i < tcTxns; i++ {
		tx, err := c.Begin()
		if err != nil {
			return flushed
		}
		if err := tx.Write(tcKey(i, 0), tcVal(i, 0)); err != nil {
			return flushed
		}
		if err := tx.Write(tcKey(i, 1), tcVal(i, 1)); err != nil {
			return flushed
		}
		if err := tx.Commit(); err != nil {
			return flushed
		}
		if err := c.Flush(); err != nil {
			return flushed
		}
		flushed = i
	}
	return flushed
}

func TestCrashRecoveryTC(t *testing.T) {
	dryDev := ssd.New(ssd.SamsungSSD)
	dryInj := fault.NewInjector(0)
	dryDev.SetFaultInjector(dryInj)
	if got := runTCWorkload(dryDev); got != tcTxns-1 {
		t.Fatalf("faultless dry run flushed %d txns, want %d", got+1, tcTxns)
	}
	_, totalWrites := dryInj.Counts()

	for seed := 0; seed < crashSeeds; seed++ {
		nth, keep := crashPoint(seed, totalWrites)
		dev := ssd.New(ssd.SamsungSSD)
		inj := fault.NewInjector(int64(seed))
		dev.SetFaultInjector(inj)
		inj.CrashAtWrite(nth, keep)

		flushed := runTCWorkload(dev)
		if !inj.Crashed() {
			t.Fatalf("seed %d: crash point %d never fired", seed, nth)
		}
		inj.Repair()

		dc := newMemDC()
		res, err := tc.Recover(dev, dc)
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}

		// Redo replay must yield a prefix of the commit order: every txn up
		// to some cutoff fully applied (a torn final flush may still carry
		// whole commit records beyond the last explicit flush), and nothing
		// after the cutoff. Commit records are atomic: a txn must never be
		// half-applied.
		cutoff := -1
		for i := 0; i < tcTxns; i++ {
			_, ok0, _ := dc.Get(tcKey(i, 0))
			_, ok1, _ := dc.Get(tcKey(i, 1))
			if ok0 != ok1 {
				t.Fatalf("seed %d: txn %d half-applied", seed, i)
			}
			if ok0 {
				if cutoff != i-1 {
					t.Fatalf("seed %d: txn %d applied but txn %d missing", seed, i, cutoff+1)
				}
				cutoff = i
				for j := 0; j < 2; j++ {
					v, _, _ := dc.Get(tcKey(i, j))
					if !bytes.Equal(v, tcVal(i, j)) {
						t.Fatalf("seed %d: txn %d replayed with wrong value", seed, i)
					}
				}
			}
		}
		if cutoff < flushed {
			t.Fatalf("seed %d: flushed txn %d lost (recovered through %d, replay %s)",
				seed, flushed, cutoff, res.Replay)
		}
		if res.Applied != (cutoff+1)*2 {
			t.Fatalf("seed %d: %d entries applied, want %d", seed, res.Applied, (cutoff+1)*2)
		}
	}
}

// --- LSM tree --------------------------------------------------------------

const (
	lsmBatches = 6
	lsmPerB    = 40
)

func lsmKey(b, i int) []byte { return []byte(fmt.Sprintf("key-%02d-%03d", b, i)) }
func lsmVal(b, i int) []byte { return workload.ValueFor(uint64(b*lsmPerB+i), 48) }
func newCrashLSM(dev *ssd.Device) (*lsm.Tree, error) {
	return lsm.New(lsm.Config{Device: dev, MemtableBytes: 4 << 10, L0Tables: 2, LevelBytesBase: 32 << 10})
}

// runLSMWorkload puts one batch of keys per iteration — deleting the first
// key of the previous batch — and commits each batch with Flush. Returns
// the last batch whose flush succeeded, or -1.
func runLSMWorkload(dev *ssd.Device) int {
	tr, err := newCrashLSM(dev)
	if err != nil {
		return -1
	}
	committed := -1
	for b := 0; b < lsmBatches; b++ {
		for i := 0; i < lsmPerB; i++ {
			if err := tr.Put(lsmKey(b, i), lsmVal(b, i)); err != nil {
				return committed
			}
		}
		if b > 0 {
			if err := tr.Delete(lsmKey(b-1, 0)); err != nil {
				return committed
			}
		}
		if err := tr.Flush(); err != nil {
			return committed
		}
		committed = b
	}
	return committed
}

func TestCrashRecoveryLSM(t *testing.T) {
	dryDev := ssd.New(ssd.SamsungSSD)
	dryInj := fault.NewInjector(0)
	dryDev.SetFaultInjector(dryInj)
	if got := runLSMWorkload(dryDev); got != lsmBatches-1 {
		t.Fatalf("faultless dry run committed %d batches, want %d", got+1, lsmBatches)
	}
	_, totalWrites := dryInj.Counts()

	for seed := 0; seed < crashSeeds; seed++ {
		nth, keep := crashPoint(seed, totalWrites)
		dev := ssd.New(ssd.SamsungSSD)
		inj := fault.NewInjector(int64(seed))
		dev.SetFaultInjector(inj)
		inj.CrashAtWrite(nth, keep)

		committed := runLSMWorkload(dev)
		if !inj.Crashed() {
			t.Fatalf("seed %d: crash point %d never fired", seed, nth)
		}
		inj.Repair()

		tr, err := lsm.Open(lsm.Config{Device: dev, MemtableBytes: 4 << 10, L0Tables: 2, LevelBytesBase: 32 << 10})
		if errors.Is(err, lsm.ErrNoManifest) {
			if committed >= 0 {
				t.Fatalf("seed %d: committed batch %d but no manifest survived", seed, committed)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}

		// Each batch is one memtable flush committed by one manifest write,
		// so recovery must see an all-or-nothing prefix of batches: a batch
		// is visible iff every batch before it is, and at least through the
		// last explicit commit. (A crash during a later flush's compaction
		// can land after that flush's manifest commit, so visibility may
		// extend one batch past `committed`.)
		visible := make([]bool, lsmBatches)
		for b := 0; b < lsmBatches; b++ {
			_, found, err := tr.Get(lsmKey(b, lsmPerB-1))
			if err != nil {
				t.Fatalf("seed %d: probe batch %d: %v", seed, b, err)
			}
			visible[b] = found
		}
		for b := 0; b < lsmBatches; b++ {
			if b <= committed && !visible[b] {
				t.Fatalf("seed %d: committed batch %d lost", seed, b)
			}
			if b > 0 && visible[b] && !visible[b-1] {
				t.Fatalf("seed %d: batch %d visible but batch %d missing", seed, b, b-1)
			}
		}
		for b := 0; b < lsmBatches; b++ {
			if !visible[b] {
				continue
			}
			deleted := b+1 < lsmBatches && visible[b+1] // next batch tombstoned our first key
			for i := 0; i < lsmPerB; i++ {
				v, found, err := tr.Get(lsmKey(b, i))
				if err != nil {
					t.Fatalf("seed %d: get %s: %v", seed, lsmKey(b, i), err)
				}
				if i == 0 && deleted {
					if found {
						t.Fatalf("seed %d: key %s resurrected past its tombstone", seed, lsmKey(b, i))
					}
					continue
				}
				if !found || !bytes.Equal(v, lsmVal(b, i)) {
					t.Fatalf("seed %d: batch %d visible but key %s wrong: found=%v", seed, b, lsmKey(b, i), found)
				}
			}
		}
	}
}
