// Mirror robustness harnesses: seeded latent-corruption sweeps over a
// logstore running on ssd.Mirror legs, a dual-leg corruption scenario that
// must quarantine and latch the store read-only, a crash-during-mirrored-
// write sweep asserting recovery always finds the intact leg, and the
// IOStats reclassification audit (a read whose payload fails verification
// is a failed physical read, never a logical one).
package integration_test

import (
	"bytes"
	"errors"
	"testing"

	"costperf/internal/bwtree"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

const (
	mirrorSeeds = 100
	mirrorRecs  = 48
)

func newMirror() *ssd.Mirror {
	return ssd.NewMirrorOf(ssd.New(ssd.SamsungSSD), ssd.New(ssd.SamsungSSD))
}

// mirrorFixture is a logstore over a fresh mirror, loaded with write-once
// records and flushed, so injected flips are guaranteed latent: nothing
// overwrites them, and repair counters must reconcile exactly.
type mirrorFixture struct {
	mir   *ssd.Mirror
	store *logstore.Store
	addrs []logstore.Address
	vals  [][]byte
}

func newMirrorFixture(t *testing.T) *mirrorFixture {
	t.Helper()
	f := &mirrorFixture{mir: newMirror()}
	st, err := logstore.Open(logstore.Config{Device: f.mir, BufferBytes: 1 << 12, SegmentBytes: 1 << 15})
	if err != nil {
		t.Fatalf("logstore.Open: %v", err)
	}
	f.store = st
	for i := 0; i < mirrorRecs; i++ {
		val := workload.ValueFor(uint64(i), 96)
		addr, err := st.Append(uint64(i), logstore.KindBase, val, nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		f.addrs = append(f.addrs, addr)
		f.vals = append(f.vals, val)
	}
	if err := st.Flush(nil); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return f
}

// pageOf returns the mirror page holding the start of record rec.
func (f *mirrorFixture) pageOf(rec int) int64 {
	return (f.addrs[rec].Off - 1) / ssd.MirrorPageSize
}

// flipLegPage plants a latent media flip: it rewrites the page holding
// record rec on one leg only, with a single bit flipped in transit, so the
// leg's media diverges from the mirror's recorded checksum without the
// mirror observing anything.
func (f *mirrorFixture) flipLegPage(t *testing.T, leg, rec int, bit int64) {
	t.Helper()
	pageOff := f.pageOf(rec) * ssd.MirrorPageSize
	legDev := f.mir.Leg(leg)
	// Legs hold unaligned extents (the mirror writes caller-shaped data),
	// so clamp the rewrite to the bytes actually on the media.
	avail := legDev.HighWater() - pageOff
	if avail > ssd.MirrorPageSize {
		avail = ssd.MirrorPageSize
	}
	cur, err := legDev.ReadAt(pageOff, int(avail), nil)
	if err != nil {
		t.Fatalf("read leg %d page for flip: %v", leg, err)
	}
	inj := fault.NewInjector(0)
	inj.FlipBitOnWrite(1, bit)
	legDev.SetFaultInjector(inj)
	if err := legDev.WriteAt(pageOff, cur, nil); err != nil {
		t.Fatalf("flip write leg %d: %v", leg, err)
	}
	legDev.SetFaultInjector(nil)
}

// readAll reads every record back through the store and checks the payloads.
func (f *mirrorFixture) readAll(t *testing.T, seed int, pass string) {
	t.Helper()
	for i, addr := range f.addrs {
		rec, err := f.store.Read(addr, nil)
		if err != nil {
			t.Fatalf("seed %d (%s): read record %d: %v", seed, pass, i, err)
		}
		if !bytes.Equal(rec.Payload, f.vals[i]) {
			t.Fatalf("seed %d (%s): record %d payload mismatch", seed, pass, i)
		}
	}
}

// TestMirrorLatentCorruptionSweep: 100 seeded single-leg bit flips. Every
// one must be detected and repaired — by the read path when it lands on the
// serving leg, by the scrubber when it lands on the standby leg — with zero
// user-visible ErrCorrupt and the repair counters reconciling exactly with
// the one injected fault.
func TestMirrorLatentCorruptionSweep(t *testing.T) {
	for seed := 0; seed < mirrorSeeds; seed++ {
		leg := seed % 2
		f := newMirrorFixture(t)
		rec := seed * (mirrorRecs - 1) / (mirrorSeeds - 1)
		bit := int64((seed*1031 + 17) % (8 * ssd.MirrorPageSize))
		f.flipLegPage(t, leg, rec, bit)

		// Pass 1: verified reads. A leg-0 flip is caught and read-repaired
		// here; a leg-1 flip is invisible (leg 0 serves every read).
		f.readAll(t, seed, "pre-scrub")
		// Pass 2: the scrubber finds whatever the read path could not see.
		srep := f.mir.ScrubOnce()
		if srep.Quarantined != 0 {
			t.Fatalf("seed %d: scrub quarantined %d pages on a single-leg flip", seed, srep.Quarantined)
		}
		// Pass 3: everything still intact.
		f.readAll(t, seed, "post-scrub")

		ms := f.mir.MirrorStats()
		rr, sr := ms.ReadRepairs.Value(), ms.ScrubRepairs.Value()
		if rr+sr != 1 {
			t.Fatalf("seed %d (leg %d): %d read-repairs + %d scrub-repairs, want exactly 1 for 1 injected flip",
				seed, leg, rr, sr)
		}
		if leg == 0 && rr != 1 {
			t.Fatalf("seed %d: leg-0 flip repaired by scrub, want read-repair", seed)
		}
		if leg == 1 && sr != 1 {
			t.Fatalf("seed %d: leg-1 flip repaired by the read path, which never reads leg 1", seed)
		}
		if q := ms.Quarantined.Value(); q != 0 {
			t.Fatalf("seed %d: %d pages quarantined on a single-leg flip", seed, q)
		}
		// Both legs must have converged back to identical images. Repair
		// writes are page-sized, so one leg's high-water may run past the
		// other's unaligned tail; beyond its own high-water a leg reads as
		// zeros, exactly like the mirror's own clamped page reads.
		hw := f.mir.HighWater()
		readPadded := func(leg int) []byte {
			n := f.mir.Leg(leg).HighWater()
			if n > hw {
				n = hw
			}
			b, err := f.mir.Leg(leg).ReadAt(0, int(n), nil)
			if err != nil {
				t.Fatalf("seed %d: leg %d readback: %v", seed, leg, err)
			}
			out := make([]byte, hw)
			copy(out, b)
			return out
		}
		if !bytes.Equal(readPadded(0), readPadded(1)) {
			t.Fatalf("seed %d: legs diverged after repair", seed)
		}
		if err := f.mir.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}

// TestMirrorDualLegCorruptionDegradesStore: the same page corrupted on both
// legs is unrecoverable. The mirror must quarantine it, surface a typed
// error (ErrQuarantined wrapping ErrCorrupt), and latch the store's Health
// degraded so the store goes read-only — never silently serve garbage.
func TestMirrorDualLegCorruptionDegradesStore(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		f := newMirrorFixture(t)
		rec := seed * (mirrorRecs - 1) / 9
		bit := int64((seed*509 + 3) % (8 * ssd.MirrorPageSize))
		f.flipLegPage(t, 0, rec, bit)
		f.flipLegPage(t, 1, rec, bit)

		_, err := f.store.Read(f.addrs[rec], nil)
		if !errors.Is(err, ssd.ErrQuarantined) {
			t.Fatalf("seed %d: dual-leg corrupt read returned %v, want ErrQuarantined", seed, err)
		}
		if !errors.Is(err, ssd.ErrCorrupt) {
			t.Fatalf("seed %d: quarantine error does not wrap ErrCorrupt", seed)
		}
		if fault.Classify(err) != fault.ClassCorrupt {
			t.Fatalf("seed %d: quarantine error classified %v, want ClassCorrupt", seed, fault.Classify(err))
		}
		if !f.store.Stats().Health.Degraded() {
			t.Fatalf("seed %d: store health not degraded after quarantine", seed)
		}
		if _, err := f.store.Append(9999, logstore.KindBase, []byte("x"), nil); !errors.Is(err, logstore.ErrDegraded) {
			t.Fatalf("seed %d: degraded store accepted a write: %v", seed, err)
		}
		if q := f.mir.MirrorStats().Quarantined.Value(); q != 1 {
			t.Fatalf("seed %d: Quarantined = %d, want 1", seed, q)
		}
		// Records on other pages stay readable: quarantine is per-page, not
		// store-wide data loss.
		badPage := f.pageOf(rec)
		for i, addr := range f.addrs {
			first := (addr.Off - 1) / ssd.MirrorPageSize
			last := (addr.Off - 1 + int64(addr.Len) + 32) / ssd.MirrorPageSize // header slack
			if first <= badPage && badPage <= last {
				continue
			}
			got, err := f.store.Read(addr, nil)
			if err != nil {
				t.Fatalf("seed %d: record %d off the bad page unreadable: %v", seed, i, err)
			}
			if !bytes.Equal(got.Payload, f.vals[i]) {
				t.Fatalf("seed %d: record %d payload mismatch", seed, i)
			}
		}
		f.mir.Close()
	}
}

// TestMirrorCrashRecoverySweep: power loss mid-mirrored-write at 100 seeded
// write indexes. The shared injector tears exactly one leg's copy (and then
// fails all I/O, like power loss), so after repair the other leg always
// holds an intact image of every acknowledged page: recovery must serve the
// committed prefix with zero corruption errors and zero quarantines.
func TestMirrorCrashRecoverySweep(t *testing.T) {
	dryMir := newMirror()
	dryInj := fault.NewInjector(0)
	dryMir.SetFaultInjector(dryInj)
	if got := runBwtreeWorkload(dryMir); got != btBatches-1 {
		t.Fatalf("faultless dry run committed %d batches, want %d", got+1, btBatches)
	}
	_, totalWrites := dryInj.Counts() // counts both legs' physical writes

	for seed := 0; seed < crashSeeds; seed++ {
		nth, keep := crashPoint(seed, totalWrites)
		mir := newMirror()
		inj := fault.NewInjector(int64(seed))
		mir.SetFaultInjector(inj) // shared: the crash lands on one leg's write
		inj.CrashAtWrite(nth, keep)

		committed := runBwtreeWorkload(mir)
		if !inj.Crashed() {
			t.Fatalf("seed %d: crash point %d never fired", seed, nth)
		}
		inj.Repair()

		st, err := openLogstore(mir)
		if err != nil {
			t.Fatalf("seed %d: reopen log store: %v", seed, err)
		}
		tree, err := bwtree.Open(bwtree.Config{Store: st})
		if errors.Is(err, bwtree.ErrNoCheckpoint) {
			if committed >= 0 {
				t.Fatalf("seed %d: committed batch %d but no checkpoint survived", seed, committed)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: reopen tree: %v", seed, err)
		}

		for b := 0; b < btBatches; b++ {
			for i := 0; i < btPerB; i++ {
				id := btKey(b, i)
				v, ok, err := tree.Get(workload.Key(id))
				if err != nil {
					t.Fatalf("seed %d: get %d: %v", seed, id, err)
				}
				if b <= committed && !ok {
					t.Fatalf("seed %d: committed key %d lost", seed, id)
				}
				if ok && !bytes.Equal(v, btValue(id)) {
					t.Fatalf("seed %d: key %d recovered with wrong value", seed, id)
				}
			}
		}
		// A single-point crash damages at most one leg: nothing may have
		// been quarantined, and a full scrub resynchronizes the legs
		// without finding a doubly-corrupt page.
		rep := mir.ScrubOnce()
		if rep.Quarantined != 0 {
			t.Fatalf("seed %d: scrub quarantined %d pages after single crash", seed, rep.Quarantined)
		}
		if q := mir.MirrorStats().Quarantined.Value(); q != 0 {
			t.Fatalf("seed %d: %d pages quarantined during recovery", seed, q)
		}
		mir.Close()
	}
}

// TestCorruptPayloadCountsAsFailedRead is the IOStats audit regression: a
// device read that transfers bytes which then fail record verification must
// land in FailedReads, not logical Reads — otherwise corrupt transfers
// inflate the logical I/O rate the cost model prices.
func TestCorruptPayloadCountsAsFailedRead(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 12, SegmentBytes: 1 << 15})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var addrs []logstore.Address
	for i := 0; i < 8; i++ {
		addr, err := st.Append(uint64(i), logstore.KindBase, workload.ValueFor(uint64(i), 64), nil)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		addrs = append(addrs, addr)
	}
	if err := st.Flush(nil); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Corrupt record 3 on the media: rewrite its first bytes with one bit
	// flipped in transit (header CRC covers them, so decode must fail).
	off := addrs[3].Off - 1
	cur, err := dev.ReadAt(off, 8, nil)
	if err != nil {
		t.Fatalf("raw read: %v", err)
	}
	inj := fault.NewInjector(0)
	inj.FlipBitOnWrite(1, 9)
	dev.SetFaultInjector(inj)
	if err := dev.WriteAt(off, cur, nil); err != nil {
		t.Fatalf("corrupting write: %v", err)
	}
	dev.SetFaultInjector(nil)

	reads0 := dev.Stats().Reads.Value()
	failed0 := dev.Stats().FailedReads.Value()
	if _, err := st.Read(addrs[3], nil); !errors.Is(err, logstore.ErrCorrupt) {
		t.Fatalf("read of corrupted record returned %v, want ErrCorrupt", err)
	}
	if got := dev.Stats().Reads.Value(); got != reads0 {
		t.Fatalf("corrupt transfer counted as logical read: Reads %d -> %d", reads0, got)
	}
	if got := dev.Stats().FailedReads.Value(); got != failed0+1 {
		t.Fatalf("corrupt transfer not in FailedReads: %d -> %d, want +1", failed0, got)
	}
	// Intact records still read (and count) normally.
	if _, err := st.Read(addrs[4], nil); err != nil {
		t.Fatalf("intact record unreadable: %v", err)
	}
	if got := dev.Stats().Reads.Value(); got != reads0+1 {
		t.Fatalf("intact read not counted: Reads %d -> %d", reads0, got)
	}
}
