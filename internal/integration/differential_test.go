package integration

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"costperf/internal/btree"
	"costperf/internal/bwtree"
	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// Differential harness: the five stores implement the same key-value
// contract behind engine.Store, so an identical seeded operation sequence
// must produce byte-identical answers from every one of them — same Get
// results, same scan contents in the same order, same final state. MassTree
// (pure main memory, no device, no caching tiers) is the oracle; any
// divergence in the others is a bug in their caching, flushing, or
// recovery-oriented machinery, exactly the machinery the paper's cost model
// charges for.
//
// Store configs are deliberately tiny (4 KiB memtable, minimal buffer
// pool, 4 KiB log buffer) so the workload constantly crosses the
// memory/secondary-storage boundary: evictions, flushes, and page loads all
// fire within a few hundred operations.

const (
	diffKeySpace  = 96
	diffOpsPerRun = 300
)

type diffStore struct {
	name string
	s    engine.Store
	devs []*ssd.Device // devices to fault in the transient-faulted run
}

func diffDevice(name string) *ssd.Device {
	return ssd.New(ssd.Config{Name: name, MaxIOPS: 1e6, LatencySec: 1e-6})
}

// buildDiffStores constructs fresh instances of all five stores. The
// MassTree oracle is always index 0.
func buildDiffStores(t *testing.T) []diffStore {
	t.Helper()
	stores := []diffStore{
		{name: "masstree", s: engine.WrapMassTree(masstree.New(nil))},
	}

	bwDev := diffDevice("diff-bw")
	bwLog, err := logstore.Open(logstore.Config{Device: bwDev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatalf("logstore.Open: %v", err)
	}
	bw, err := bwtree.New(bwtree.Config{Store: bwLog, ConsolidateAfter: 4})
	if err != nil {
		t.Fatalf("bwtree.New: %v", err)
	}
	stores = append(stores, diffStore{name: "bwtree", s: engine.WrapBwTree(bw), devs: []*ssd.Device{bwDev}})

	btDev := diffDevice("diff-bt")
	bt, err := btree.New(btree.Config{Device: btDev, PoolPages: 8})
	if err != nil {
		t.Fatalf("btree.New: %v", err)
	}
	stores = append(stores, diffStore{name: "btree", s: engine.WrapBTree(bt), devs: []*ssd.Device{btDev}})

	lsmDev := diffDevice("diff-lsm")
	ls, err := lsm.New(lsm.Config{Device: lsmDev, MemtableBytes: 4096})
	if err != nil {
		t.Fatalf("lsm.New: %v", err)
	}
	stores = append(stores, diffStore{name: "lsm", s: engine.WrapLSM(ls), devs: []*ssd.Device{lsmDev}})

	// TC stacks on its own Bw-tree data component; both the DC's log-store
	// device and the recovery-log device belong to the store for faulting.
	tcDCDev := diffDevice("diff-tc-dc")
	tcLog, err := logstore.Open(logstore.Config{Device: tcDCDev, BufferBytes: 4096, SegmentBytes: 16384})
	if err != nil {
		t.Fatalf("tc logstore.Open: %v", err)
	}
	tcDC, err := bwtree.New(bwtree.Config{Store: tcLog, ConsolidateAfter: 4})
	if err != nil {
		t.Fatalf("tc bwtree.New: %v", err)
	}
	tcLogDev := diffDevice("diff-tc-log")
	tcc, err := tc.New(tc.Config{DC: tcDC, LogDevice: tcLogDev, LogBufferBytes: 4096})
	if err != nil {
		t.Fatalf("tc.New: %v", err)
	}
	stores = append(stores, diffStore{name: "tc", s: engine.WrapTC(tcc), devs: []*ssd.Device{tcDCDev, tcLogDev}})

	return stores
}

func diffKey(rng *rand.Rand) []byte {
	return []byte(fmt.Sprintf("key-%04d", rng.Intn(diffKeySpace)))
}

func diffVal(rng *rand.Rand) []byte {
	v := make([]byte, 1+rng.Intn(160))
	rng.Read(v)
	return v
}

// collectScan materializes a scan into parallel key/value slices.
func collectScan(s engine.Store, start []byte, limit int) ([][]byte, [][]byte, error) {
	var ks, vs [][]byte
	err := s.Scan(context.Background(), start, limit, func(k, v []byte) bool {
		ks = append(ks, append([]byte(nil), k...))
		vs = append(vs, append([]byte(nil), v...))
		return true
	})
	return ks, vs, err
}

// compareScans asserts store got the byte-identical scan (contents and
// order) that the oracle produced.
func compareScans(t *testing.T, seed int64, name string, refK, refV, gotK, gotV [][]byte) {
	t.Helper()
	if len(gotK) != len(refK) {
		t.Errorf("seed %d: %s scan returned %d pairs, oracle %d", seed, name, len(gotK), len(refK))
		return
	}
	for i := range refK {
		if !bytes.Equal(gotK[i], refK[i]) {
			t.Errorf("seed %d: %s scan pair %d has key %q, oracle %q", seed, name, i, gotK[i], refK[i])
			return
		}
		if !bytes.Equal(gotV[i], refV[i]) {
			t.Errorf("seed %d: %s scan pair %d (key %q) value diverges", seed, name, i, refK[i])
			return
		}
	}
}

// diffOp is one generated operation, identical across stores.
type diffOp struct {
	kind  int // 0 put, 1 get, 2 delete, 3 scan
	key   []byte
	val   []byte
	limit int
}

func genDiffOps(seed int64, n int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]diffOp, 0, n)
	for i := 0; i < n; i++ {
		op := diffOp{key: diffKey(rng)}
		switch r := rng.Intn(20); {
		case r < 11:
			op.kind = 0
			op.val = diffVal(rng)
		case r < 14:
			op.kind = 1
		case r < 17:
			op.kind = 2
		default:
			op.kind = 3
			op.limit = 1 + rng.Intn(12)
		}
		ops = append(ops, op)
	}
	return ops
}

// applyOnce applies op to s with no retries, returning the Get result when
// op is a read.
func applyOnce(s engine.Store, op diffOp) (val []byte, ok bool, ks, vs [][]byte, err error) {
	ctx := context.Background()
	switch op.kind {
	case 0:
		err = s.Put(ctx, op.key, op.val)
	case 1:
		val, ok, err = s.Get(ctx, op.key)
	case 2:
		err = s.Delete(ctx, op.key)
	case 3:
		ks, vs, err = collectScan(s, op.key, op.limit)
	}
	return val, ok, ks, vs, err
}

// TestDifferentialStores runs the same seeded workload through all five
// stores and compares every observable result against the MassTree oracle.
func TestDifferentialStores(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			stores := buildDiffStores(t)
			ops := genDiffOps(seed, diffOpsPerRun)
			for i, op := range ops {
				refVal, refOK, refK, refV, err := applyOnce(stores[0].s, op)
				if err != nil {
					t.Fatalf("seed %d op %d: oracle error: %v", seed, i, err)
				}
				for _, ds := range stores[1:] {
					val, ok, ks, vs, err := applyOnce(ds.s, op)
					if err != nil {
						t.Fatalf("seed %d op %d: %s error: %v", seed, i, ds.name, err)
					}
					switch op.kind {
					case 1:
						if ok != refOK {
							t.Errorf("seed %d op %d: %s Get(%q) found=%v, oracle %v", seed, i, ds.name, op.key, ok, refOK)
						} else if ok && !bytes.Equal(val, refVal) {
							t.Errorf("seed %d op %d: %s Get(%q) value diverges", seed, i, ds.name, op.key)
						}
					case 3:
						compareScans(t, seed, ds.name, refK, refV, ks, vs)
					}
				}
			}
			// Final full scan: identical residual state in identical order.
			refK, refV, err := collectScan(stores[0].s, nil, 0)
			if err != nil {
				t.Fatalf("seed %d: oracle final scan: %v", seed, err)
			}
			for _, ds := range stores[1:] {
				ks, vs, err := collectScan(ds.s, nil, 0)
				if err != nil {
					t.Fatalf("seed %d: %s final scan: %v", seed, ds.name, err)
				}
				compareScans(t, seed, ds.name+" final", refK, refV, ks, vs)
			}
		})
	}
}

// TestDifferentialStoresUnderTransientFaults reruns the workload with
// transient device faults injected into every device-backed store. Failed
// operations are retried at the harness level (all five operations are
// idempotent), so after the injectors are removed every store must converge
// to the oracle's exact final state — transient faults may cost retries but
// never state.
func TestDifferentialStoresUnderTransientFaults(t *testing.T) {
	seeds := []int64{1001, 1002, 1003, 1004, 1005}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			stores := buildDiffStores(t)
			for _, ds := range stores {
				for di, dev := range ds.devs {
					inj := fault.NewInjector(seed + int64(di)*977)
					inj.SetReadErrorRate(0.05)
					inj.SetWriteErrorRate(0.05)
					dev.SetFaultInjector(inj)
				}
			}
			ops := genDiffOps(seed, diffOpsPerRun)
			for i, op := range ops {
				for _, ds := range stores {
					var err error
					for attempt := 0; attempt < 200; attempt++ {
						if _, _, _, _, err = applyOnce(ds.s, op); err == nil {
							break
						}
						if !fault.IsTransient(err) {
							t.Fatalf("seed %d op %d: %s non-transient error: %v", seed, i, ds.name, err)
						}
					}
					if err != nil {
						t.Fatalf("seed %d op %d: %s still failing after retries: %v", seed, i, ds.name, err)
					}
				}
			}
			// Remove the injectors and compare final state byte-for-byte.
			for _, ds := range stores {
				for _, dev := range ds.devs {
					dev.SetFaultInjector(nil)
				}
			}
			refK, refV, err := collectScan(stores[0].s, nil, 0)
			if err != nil {
				t.Fatalf("seed %d: oracle final scan: %v", seed, err)
			}
			for _, ds := range stores[1:] {
				ks, vs, err := collectScan(ds.s, nil, 0)
				if err != nil {
					t.Fatalf("seed %d: %s final scan: %v", seed, ds.name, err)
				}
				compareScans(t, seed, ds.name+" faulted-final", refK, refV, ks, vs)
			}
		})
	}
}
