package integration

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/obs"
	"costperf/internal/ssd"
)

// Chaos-under-load harness: N goroutines drive mixed get/put/scan traffic
// through the engine front-end while the fault injector fires transient
// errors, latency spikes, and a mid-run device crash. Invariants checked:
//
//   - Monotonic versions: every observed value decodes to (key, version)
//     with the right key and a version no older than the highest version
//     acknowledged before the read started, and never newer than the
//     highest version issued.
//   - No lost acknowledged writes: after crash + repair + recovery, every
//     key's durable version is at least the checkpoint floor — the highest
//     acknowledged version snapshotted before the last checkpoint that
//     durably committed (bwtree FlushAll / lsm Flush).
//   - Overload sheds instead of deadlocking: overload-configured runs
//     (tiny concurrency limit and queue) must shed at least one request,
//     and every run must finish under a watchdog.
//
// Each writer owns a disjoint key range (single writer per key), so
// per-key version sequences are strictly increasing by construction and
// any regression observed by a reader is a store bug.

const (
	chaosWriters       = 6
	chaosKeysPerWriter = 8
	chaosKeys          = chaosWriters * chaosKeysPerWriter
	chaosOpsPerWorker  = 400
	chaosWatchdog      = 2 * time.Minute
)

func chaosKey(idx int) []byte { return []byte(fmt.Sprintf("k%05d", idx)) }

func chaosVal(idx int, version uint64) []byte {
	v := make([]byte, 12)
	binary.BigEndian.PutUint32(v, uint32(idx))
	binary.BigEndian.PutUint64(v[4:], version)
	return v
}

func decodeChaosVal(t *testing.T, v []byte) (int, uint64) {
	t.Helper()
	if len(v) != 12 {
		t.Fatalf("value has %d bytes, want 12", len(v))
	}
	return int(binary.BigEndian.Uint32(v)), binary.BigEndian.Uint64(v[4:])
}

// slowStore adds a little real wall-clock latency to every operation.
// The stores themselves run in virtual time and finish in nanoseconds of
// wall clock, so without it an overload run with MaxConcurrent=1 would
// almost never see two requests collide; the sleep makes the admission
// queue genuinely fill and shed.
type slowStore struct {
	engine.Store
	d time.Duration
}

func (s *slowStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	time.Sleep(s.d)
	return s.Store.Get(ctx, key)
}

func (s *slowStore) Put(ctx context.Context, key, val []byte) error {
	time.Sleep(s.d)
	return s.Store.Put(ctx, key, val)
}

// chaosState is the shared issued/acked/floor bookkeeping.
type chaosState struct {
	issued  [chaosKeys]atomic.Uint64 // highest version handed to a Put
	acked   [chaosKeys]atomic.Uint64 // highest version whose Put returned nil
	floorMu sync.Mutex
	floor   [chaosKeys]uint64 // acked snapshot at the last durable checkpoint
	crashed atomic.Bool
}

func (s *chaosState) snapshotAcked() [chaosKeys]uint64 {
	var out [chaosKeys]uint64
	for i := range out {
		out[i] = s.acked[i].Load()
	}
	return out
}

func (s *chaosState) promoteFloor(snap [chaosKeys]uint64) {
	s.floorMu.Lock()
	s.floor = snap
	s.floorMu.Unlock()
}

func (s *chaosState) floorOf(idx int) uint64 {
	s.floorMu.Lock()
	defer s.floorMu.Unlock()
	return s.floor[idx]
}

// chaosVariant abstracts the two recoverable stores under test.
type chaosVariant struct {
	name string
	// build creates the store over dev (traced by tr) and returns its engine
	// Store plus a checkpoint func (the store's durable commit point).
	build func(t *testing.T, dev ssd.Dev, tr *obs.Tracer) (engine.Store, func() error)
	// recover reopens the store from the repaired device and returns a
	// lookup func, or empty=true when no commit point ever became durable.
	recover func(t *testing.T, dev ssd.Dev) (lookup func(key []byte) ([]byte, bool, error), empty bool)
}

func bwtreeChaosVariant() chaosVariant {
	logCfg := func(dev ssd.Dev) logstore.Config {
		return logstore.Config{Device: dev, BufferBytes: 4096, SegmentBytes: 16384}
	}
	return chaosVariant{
		name: "bwtree",
		build: func(t *testing.T, dev ssd.Dev, obsTr *obs.Tracer) (engine.Store, func() error) {
			st, err := logstore.Open(logCfg(dev))
			if err != nil {
				t.Fatalf("logstore.Open: %v", err)
			}
			tr, err := bwtree.New(bwtree.Config{Store: st, ConsolidateAfter: 4, Obs: obsTr})
			if err != nil {
				t.Fatalf("bwtree.New: %v", err)
			}
			obsTr.FoldRetries(&tr.Stats().Retry)
			obsTr.FoldHealth(&tr.Stats().Health)
			return engine.WrapBwTree(tr), tr.FlushAll
		},
		recover: func(t *testing.T, dev ssd.Dev) (func([]byte) ([]byte, bool, error), bool) {
			st, err := logstore.Open(logCfg(dev))
			if err != nil {
				t.Fatalf("logstore re-open: %v", err)
			}
			tr, err := bwtree.Open(bwtree.Config{Store: st, ConsolidateAfter: 4})
			if errors.Is(err, bwtree.ErrNoCheckpoint) {
				return nil, true
			}
			if err != nil {
				t.Fatalf("bwtree.Open after repair: %v", err)
			}
			return tr.Get, false
		},
	}
}

func lsmChaosVariant() chaosVariant {
	cfg := func(dev ssd.Dev) lsm.Config {
		return lsm.Config{Device: dev, MemtableBytes: 4096}
	}
	return chaosVariant{
		name: "lsm",
		build: func(t *testing.T, dev ssd.Dev, obsTr *obs.Tracer) (engine.Store, func() error) {
			c := cfg(dev)
			c.Obs = obsTr
			tr, err := lsm.New(c)
			if err != nil {
				t.Fatalf("lsm.New: %v", err)
			}
			obsTr.FoldRetries(&tr.Stats().Retry)
			obsTr.FoldHealth(&tr.Stats().Health)
			return engine.WrapLSM(tr), tr.Flush
		},
		recover: func(t *testing.T, dev ssd.Dev) (func([]byte) ([]byte, bool, error), bool) {
			tr, err := lsm.Open(cfg(dev))
			if errors.Is(err, lsm.ErrNoManifest) {
				return nil, true
			}
			if err != nil {
				t.Fatalf("lsm.Open after repair: %v", err)
			}
			return tr.Get, false
		},
	}
}

// runChaos executes one seeded chaos run and returns the engine stats.
//
// mirrored runs the store on an ssd.Mirror instead of a bare device: one
// leg takes seeded mid-run latent bit flips (and transient read errors)
// while the background scrubber races the readers to repair them. No crash
// is scheduled — a mirrored crash sweep has its own harness — and the run
// asserts that no operation ever surfaces ssd.ErrCorrupt: single-leg
// damage must be absorbed by failover, read-repair, and the scrubber.
func runChaos(t *testing.T, variant chaosVariant, seed int64, overload, mirrored bool) {
	rng := rand.New(rand.NewSource(seed))
	devCfg := ssd.Config{Name: "chaos", MaxIOPS: 1e6, LatencySec: 1e-6}
	var dev ssd.Dev
	var mir *ssd.Mirror
	if mirrored {
		mir = ssd.NewMirror(devCfg)
		dev = mir
	} else {
		dev = ssd.New(devCfg)
	}
	inj := fault.NewInjector(seed)

	// Observability: the store's tracer observes the device, the engine has
	// its own, and a narrator goroutine periodically logs one cost line per
	// store so overload and fault episodes are visible in the test trace.
	reg := obs.NewRegistry()
	obsTr := reg.Tracer(variant.name)
	dev.SetObserver(obsTr)
	if mirrored {
		obsTr.FoldMirror(mir.MirrorStats())
	}
	store, checkpoint := variant.build(t, dev, obsTr)

	// Faults start only once the store exists. Bare device: transient error
	// rates, virtual latency spikes, and one crash point early enough that
	// the run's write traffic is sure to reach it. Mirror: latency spikes
	// everywhere, plus one leg carrying seeded latent bit flips and
	// transient read errors — damage confined to a single leg is always
	// repairable, which is exactly what the no-ErrCorrupt assertion needs.
	inj.SetLatencySpikes(0.02, 0.001)
	var crashAt int64
	if mirrored {
		flipLeg := int(seed % 2)
		flipInj := fault.NewInjector(seed + 7919)
		flipInj.SetReadErrorRate(0.01)
		flipInj.SetLatencySpikes(0.02, 0.001)
		next := int64(10)
		for k := 0; k < 3+rng.Intn(3); k++ {
			next += int64(20 + rng.Intn(60))
			flipInj.FlipBitOnWrite(next, rng.Int63n(8*ssd.MirrorPageSize))
		}
		dev.SetFaultInjector(inj)          // both legs: latency spikes
		mir.Leg(flipLeg).SetFaultInjector(flipInj) // one leg: flips + read errors
		mir.StartScrub(20000)
		defer mir.StopScrub()
	} else {
		inj.SetReadErrorRate(0.01)
		inj.SetWriteErrorRate(0.01)
		crashAt = int64(8 + rng.Intn(17)) // device writes until power loss
		inj.CrashAtWrite(crashAt, rng.Intn(64))
		dev.SetFaultInjector(inj)
	}

	cfg := engine.Config{Store: store, Obs: reg.Tracer("engine")}
	if overload {
		cfg.Store = &slowStore{Store: store, d: 20 * time.Microsecond}
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = 1
	} else {
		cfg.MaxConcurrent = 4
		cfg.MaxQueue = 8
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}

	state := &chaosState{}
	ctx := context.Background()

	// Mirrored runs must never surface corruption to a caller: every
	// injected flip lands on one leg, and the mirror owns the repair.
	var corruptSeen atomic.Int64
	noteErr := func(err error) {
		if err != nil && errors.Is(err, ssd.ErrCorrupt) {
			corruptSeen.Add(1)
		}
	}

	// Narrator: every 200ms emit one line per active store with measured F,
	// R, shed/timeout counts, and live $/op against paper rates.
	stopNarr := make(chan struct{})
	var narrWG sync.WaitGroup
	narrWG.Add(1)
	go func() {
		defer narrWG.Done()
		base := core.PaperCosts()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopNarr:
				return
			case <-tick.C:
				for _, line := range reg.Narrate(base) {
					t.Logf("seed %d narrator: %s", seed, line)
				}
			}
		}
	}()

	// Checkpointer: snapshot acked versions, run the store's durable
	// commit point, and promote the snapshot to the recovery floor only if
	// the checkpoint fully committed. The snapshot is taken BEFORE the
	// checkpoint starts, so everything it covers is durable afterwards.
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			snap := state.snapshotAcked()
			if err := checkpoint(); err == nil {
				state.promoteFloor(snap)
			} else if noteErr(err); errors.Is(err, fault.ErrCrashed) {
				state.crashed.Store(true)
				return
			} else if fault.Classify(err) == fault.ClassPersistent {
				return // store latched degraded; no more checkpoints
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var shedSeen, ackedPuts atomic.Int64
	start := make(chan struct{}) // barrier: all workers burst together
	var wg sync.WaitGroup
	for w := 0; w < chaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*131 + int64(w)))
			<-start
			for i := 0; i < chaosOpsPerWorker; i++ {
				if state.crashed.Load() {
					return
				}
				switch op := wrng.Intn(10); {
				case op < 6: // put to an owned key
					idx := w*chaosKeysPerWriter + wrng.Intn(chaosKeysPerWriter)
					ver := state.issued[idx].Load() + 1
					state.issued[idx].Store(ver) // before the Put: observed <= issued
					err := eng.Put(ctx, chaosKey(idx), chaosVal(idx, ver))
					noteErr(err)
					switch {
					case err == nil:
						state.acked[idx].Store(ver)
						ackedPuts.Add(1)
					case errors.Is(err, fault.ErrCrashed):
						state.crashed.Store(true)
						return
					case errors.Is(err, engine.ErrOverload):
						shedSeen.Add(1)
					}
				case op < 9: // read any key, checking monotonic versions
					idx := wrng.Intn(chaosKeys)
					ackedFloor := state.acked[idx].Load() // before the read
					v, ok, err := eng.Get(ctx, chaosKey(idx))
					noteErr(err)
					if errors.Is(err, fault.ErrCrashed) {
						state.crashed.Store(true)
						return
					}
					if err != nil {
						if errors.Is(err, engine.ErrOverload) {
							shedSeen.Add(1)
						}
						continue // transient/overload/degraded: no data seen
					}
					if !ok {
						if ackedFloor > 0 {
							t.Errorf("seed %d: key %d lost: acked version %d, Get found nothing", seed, idx, ackedFloor)
						}
						continue
					}
					ki, ver := decodeChaosVal(t, v)
					if ki != idx {
						t.Errorf("seed %d: key %d returned value of key %d", seed, idx, ki)
					}
					if ver < ackedFloor {
						t.Errorf("seed %d: key %d went back in time: read v%d after v%d was acked", seed, idx, ver, ackedFloor)
					}
					if hi := state.issued[idx].Load(); ver > hi {
						t.Errorf("seed %d: key %d read v%d, but only v%d was ever issued", seed, idx, ver, hi)
					}
				default: // scan a short range
					from := wrng.Intn(chaosKeys)
					err := eng.Scan(ctx, chaosKey(from), 8, func(k, v []byte) bool {
						ki, ver := decodeChaosVal(t, v)
						if string(chaosKey(ki)) != string(k) {
							t.Errorf("seed %d: scan saw key %q with value of key %d", seed, k, ki)
						}
						if hi := state.issued[ki].Load(); ver > hi || ver == 0 {
							t.Errorf("seed %d: scan saw key %d at impossible version %d (issued %d)", seed, ki, ver, hi)
						}
						return true
					})
					noteErr(err)
					if errors.Is(err, fault.ErrCrashed) {
						state.crashed.Store(true)
						return
					}
					if errors.Is(err, engine.ErrOverload) {
						shedSeen.Add(1)
					}
				}
			}
		}(w)
	}
	close(start)

	// Watchdog: overload must shed, never deadlock.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(chaosWatchdog):
		t.Fatalf("seed %d: chaos run deadlocked (workers still blocked after %v)", seed, chaosWatchdog)
	}
	close(stopCkpt)
	ckptWG.Wait()
	close(stopNarr)
	narrWG.Wait()
	for _, line := range reg.Narrate(core.PaperCosts()) {
		t.Logf("seed %d final: %s", seed, line)
	}

	st := eng.Stats()
	if overload && st.Shed.Value() == 0 {
		t.Errorf("seed %d: overload run shed nothing (admitted=%d)", seed, st.Admitted.Value())
	}
	if st.Shed.Value() != shedSeen.Load() {
		t.Errorf("seed %d: engine shed %d, callers saw %d", seed, st.Shed.Value(), shedSeen.Load())
	}
	if st.QueueDepth.Value() != 0 {
		t.Errorf("seed %d: queue depth %d after drain", seed, st.QueueDepth.Value())
	}

	if mirrored {
		mir.StopScrub()
		// End of the fault episode: detach both legs' injectors so the
		// convergence drain below cannot have its repair writes re-flipped
		// by a still-pending scheduled fault.
		mir.Leg(0).SetFaultInjector(nil)
		mir.Leg(1).SetFaultInjector(nil)
		ms := mir.MirrorStats()
		if n := corruptSeen.Load(); n != 0 {
			t.Errorf("seed %d: %d operations surfaced ErrCorrupt despite the mirror (stats: %s)", seed, n, ms.String())
		}
		if q := ms.Quarantined.Value(); q != 0 {
			t.Errorf("seed %d: %d pages quarantined from single-leg flips", seed, q)
		}
		if ms.ScrubReads.Value() == 0 && mir.HighWater() > 0 {
			// A run whose store never flushed to the device leaves the
			// mirror empty; scrub passes over zero extents read nothing.
			t.Errorf("seed %d: background scrubber never ran", seed)
		}
		// Drain any latent damage the readers and the background scrubber
		// did not reach, then prove the legs are fully consistent: a second
		// pass over a healed mirror finds nothing.
		if rep := mir.ScrubOnce(); rep.Quarantined != 0 {
			t.Errorf("seed %d: final scrub quarantined %d pages", seed, rep.Quarantined)
		}
		if rep := mir.ScrubOnce(); rep.Repaired != 0 || rep.Quarantined != 0 {
			t.Errorf("seed %d: legs still inconsistent after full scrub: %+v", seed, rep)
		}
		t.Logf("seed %d mirror: %s", seed, ms.String())
	}

	if !inj.Crashed() {
		// The run ended before the crash point (heavy shedding can starve
		// writes below the crash threshold). Verify live state instead:
		// every acked write must be observable right now.
		for idx := 0; idx < chaosKeys; idx++ {
			acked := state.acked[idx].Load()
			if acked == 0 {
				continue
			}
			v, ok, err := eng.Get(ctx, chaosKey(idx))
			if err != nil || !ok {
				t.Errorf("seed %d: key %d acked v%d but live Get = %v, %v", seed, idx, acked, ok, err)
				continue
			}
			if _, ver := decodeChaosVal(t, v); ver < acked {
				t.Errorf("seed %d: key %d live version %d < acked %d", seed, idx, ver, acked)
			}
		}
		return
	}

	// Crash fired: repair the device and recover from the last durable
	// commit point. No acknowledged write at or below the checkpoint floor
	// may be lost, and nothing beyond the issued horizon may appear.
	t.Logf("seed %d: crash after %d device writes; %d puts acked; stats: %s",
		seed, crashAt, ackedPuts.Load(), st.String())
	inj.Repair()
	lookup, empty := variant.recover(t, dev)
	if empty {
		for idx := 0; idx < chaosKeys; idx++ {
			if f := state.floorOf(idx); f > 0 {
				t.Errorf("seed %d: checkpoint floor v%d for key %d but store recovered empty", seed, f, idx)
			}
		}
		return
	}
	for idx := 0; idx < chaosKeys; idx++ {
		floor := state.floorOf(idx)
		v, ok, err := lookup(chaosKey(idx))
		if err != nil {
			t.Errorf("seed %d: recovered Get key %d: %v", seed, idx, err)
			continue
		}
		if !ok {
			if floor > 0 {
				t.Errorf("seed %d: key %d lost after crash: floor v%d, found nothing", seed, idx, floor)
			}
			continue
		}
		ki, ver := decodeChaosVal(t, v)
		if ki != idx {
			t.Errorf("seed %d: recovered key %d holds value of key %d", seed, idx, ki)
		}
		if ver < floor {
			t.Errorf("seed %d: key %d recovered at v%d, below checkpoint floor v%d", seed, idx, ver, floor)
		}
		if hi := state.issued[idx].Load(); ver > hi {
			t.Errorf("seed %d: key %d recovered at v%d, but only v%d was issued", seed, idx, ver, hi)
		}
	}
}

func chaosSeeds(t *testing.T, base int64) []int64 {
	n := 25
	if testing.Short() {
		n = 4
	}
	seeds := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		seeds = append(seeds, base+int64(i))
	}
	return seeds
}

func TestChaosBwTree(t *testing.T) {
	for _, seed := range chaosSeeds(t, 1) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, bwtreeChaosVariant(), seed, seed%3 == 0, false)
		})
	}
}

func TestChaosLSM(t *testing.T) {
	for _, seed := range chaosSeeds(t, 101) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, lsmChaosVariant(), seed, seed%3 == 0, false)
		})
	}
}

// mirrorChaosSeeds is smaller than chaosSeeds: each mirrored run carries
// doubled device traffic plus a hot background scrubber.
func mirrorChaosSeeds(t *testing.T, base int64) []int64 {
	n := 8
	if testing.Short() {
		n = 2
	}
	seeds := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		seeds = append(seeds, base+int64(i))
	}
	return seeds
}

func TestChaosMirroredBwTree(t *testing.T) {
	for _, seed := range mirrorChaosSeeds(t, 201) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, bwtreeChaosVariant(), seed, seed%3 == 0, true)
		})
	}
}

func TestChaosMirroredLSM(t *testing.T) {
	for _, seed := range mirrorChaosSeeds(t, 301) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, lsmChaosVariant(), seed, seed%3 == 0, true)
		})
	}
}
