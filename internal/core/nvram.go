package core

import "fmt"

// NVRAMParams extends the cost model with a non-volatile memory tier
// (paper Section 8.2): priced between DRAM and flash, performing between
// them, and accessed by load/store — an "NV operation" pays no I/O and no
// context switch, only slower memory accesses.
type NVRAMParams struct {
	// CostPerByte is the NVRAM $/byte (between $M and $Fl).
	CostPerByte float64
	// SlowdownFactor is the execution multiplier of an NV operation
	// relative to an MM operation (>= 1; fetching from NVRAM costs more
	// than DRAM but "has much lower cost and performance impact than an SS
	// operation which needs I/O").
	SlowdownFactor float64
}

// DefaultNVRAM returns illustrative Section 8.2 parameters: 2.5x cheaper
// than DRAM, 2x slower to operate on.
func DefaultNVRAM() NVRAMParams {
	return NVRAMParams{CostPerByte: 2e-9, SlowdownFactor: 2}
}

// Validate checks the parameters lie in the regime the paper discusses.
func (p NVRAMParams) Validate(c Costs) error {
	if p.CostPerByte <= 0 {
		return fmt.Errorf("core: NVRAM cost %v must be positive", p.CostPerByte)
	}
	if p.CostPerByte >= c.DRAMPerByte {
		return fmt.Errorf("core: NVRAM at %v not cheaper than DRAM %v", p.CostPerByte, c.DRAMPerByte)
	}
	if p.CostPerByte <= c.FlashPerByte {
		return fmt.Errorf("core: NVRAM at %v not dearer than flash %v (then it would displace flash)",
			p.CostPerByte, c.FlashPerByte)
	}
	if p.SlowdownFactor < 1 {
		return fmt.Errorf("core: NVRAM slowdown %v must be >= 1", p.SlowdownFactor)
	}
	return nil
}

// NVCostPerSec returns the relative cost/sec of supporting n ops/sec on a
// page resident in NVRAM. NVRAM is persistent, so — unlike the DRAM case
// of Equation 4 — no separate flash copy is rented.
//
//	$NV = Ps*$NV + N * slowdown * $P/ROPS
func (c Costs) NVCostPerSec(n float64, p NVRAMParams) float64 {
	return c.PageSize*p.CostPerByte + n*p.SlowdownFactor*c.Processor/c.ROPS
}

// NVExecCostPerOp returns the execution-only cost of one NV operation.
func (c Costs) NVExecCostPerOp(p NVRAMParams) float64 {
	return p.SlowdownFactor * c.Processor / c.ROPS
}

// NVSSBreakevenRate returns the access rate above which NVRAM residency
// beats flash + SS operations — the analogue of Equation 6 for the
// DRAM/NVRAM boundary moved down one tier.
//
//	N* = ($NV - $Fl) * Ps / [ $I/IOPS + (R - slowdown) * $P/ROPS ]
func (c Costs) NVSSBreakevenRate(p NVRAMParams) float64 {
	storage := (p.CostPerByte - c.FlashPerByte) * c.PageSize
	exec := c.IOPSCost/c.IOPS + (c.R-p.SlowdownFactor)*c.Processor/c.ROPS
	if exec <= 0 {
		return 0 // NV ops cost at least as much as SS ops: never worth it
	}
	return storage / exec
}

// MMNVBreakevenRate returns the access rate above which DRAM (plus its
// durable flash copy) beats NVRAM residency.
//
//	N* = ($M + $Fl - $NV) * Ps / [ (slowdown - 1) * $P/ROPS ]
func (c Costs) MMNVBreakevenRate(p NVRAMParams) float64 {
	storage := (c.DRAMPerByte + c.FlashPerByte - p.CostPerByte) * c.PageSize
	exec := (p.SlowdownFactor - 1) * c.Processor / c.ROPS
	if exec <= 0 {
		return 0 // NVRAM as fast as DRAM: it wins at every rate
	}
	return storage / exec
}

// TierChoice names the cheapest residence tier at a given access rate.
type TierChoice int

const (
	// TierFlash: page on flash, SS operations.
	TierFlash TierChoice = iota
	// TierNVRAM: page in NVRAM, NV operations.
	TierNVRAM
	// TierDRAM: page in DRAM (durable copy on flash), MM operations.
	TierDRAM
)

// String names the tier.
func (t TierChoice) String() string {
	switch t {
	case TierFlash:
		return "flash"
	case TierNVRAM:
		return "nvram"
	default:
		return "dram"
	}
}

// CheapestTier returns which of flash/NVRAM/DRAM minimizes cost/sec at
// access rate n — the three-tier storage hierarchy of Section 8.2.
func (c Costs) CheapestTier(n float64, p NVRAMParams) TierChoice {
	ss, nv, mm := c.SSCostPerSec(n), c.NVCostPerSec(n, p), c.MMCostPerSec(n)
	switch {
	case ss <= nv && ss <= mm:
		return TierFlash
	case nv <= mm:
		return TierNVRAM
	default:
		return TierDRAM
	}
}

// FigureNVRAM generates a Figure 8-style chart for the three-tier
// hierarchy: flash (SS), NVRAM (NV), and DRAM (MM) cost lines across
// access rates.
func FigureNVRAM(c Costs, p NVRAMParams, n int) Figure {
	be := c.BreakevenRate()
	lo := c.NVSSBreakevenRate(p) / 100
	if lo <= 0 {
		lo = be / 1e4
	}
	rates := logspace(lo, be*100, n)
	fig := Figure{
		Title:  "NVRAM extension: three-tier residence costs (Section 8.2)",
		XLabel: "accesses/sec",
		YLabel: "relative cost/sec",
	}
	ss := Series{Name: "flash (SS)"}
	nv := Series{Name: "nvram (NV)"}
	mm := Series{Name: "dram (MM)"}
	for _, r := range rates {
		ss.Points = append(ss.Points, Point{r, c.SSCostPerSec(r)})
		nv.Points = append(nv.Points, Point{r, c.NVCostPerSec(r, p)})
		mm.Points = append(mm.Points, Point{r, c.MMCostPerSec(r)})
	}
	fig.Series = []Series{ss, nv, mm}
	return fig
}

// CMMParams models compressed main memory — the closing idea of Section
// 7.2: keep pages compressed in DRAM, paying decompression CPU on access
// but renting compressed-size DRAM, as a fourth operation form between MM
// and SS.
type CMMParams struct {
	// CompressionRatio is compressed/uncompressed size in (0, 1].
	CompressionRatio float64
	// DecompressOverhead is the extra CPU per operation as a multiple of
	// the MM execution cost.
	DecompressOverhead float64
}

// DefaultCMM returns illustrative parameters matching DefaultCSS.
func DefaultCMM() CMMParams {
	return CMMParams{CompressionRatio: 0.4, DecompressOverhead: 3}
}

// Validate checks the parameters are in range.
func (p CMMParams) Validate() error {
	if p.CompressionRatio <= 0 || p.CompressionRatio > 1 {
		return fmt.Errorf("core: CMM ratio %v out of (0,1]", p.CompressionRatio)
	}
	if p.DecompressOverhead < 0 {
		return fmt.Errorf("core: CMM overhead %v negative", p.DecompressOverhead)
	}
	return nil
}

// CMMCostPerSec returns the relative cost/sec of a page held compressed
// in DRAM (durable copy compressed on flash too):
//
//	$CMM = Ps*ratio*($M + $Fl) + N * (1 + D) * $P/ROPS
//
// The paper conjectures "its total cost might well be lower than either"
// pure-MM or SS in an intermediate band; CheapestOperationWithCMM finds
// that band.
func (c Costs) CMMCostPerSec(n float64, p CMMParams) float64 {
	storage := c.PageSize * p.CompressionRatio * (c.DRAMPerByte + c.FlashPerByte)
	exec := (1 + p.DecompressOverhead) * c.Processor / c.ROPS
	return storage + n*exec
}

// CheapestOperationWithCMM compares all four forms (CSS, SS, CMM, MM) and
// returns the per-second costs alongside the winner's name.
func (c Costs) CheapestOperationWithCMM(n float64, css CSSParams, cmm CMMParams) (string, map[string]float64) {
	costs := map[string]float64{
		"CSS": c.CSSCostPerSec(n, css),
		"SS":  c.SSCostPerSec(n),
		"CMM": c.CMMCostPerSec(n, cmm),
		"MM":  c.MMCostPerSec(n),
	}
	best, bestCost := "MM", costs["MM"]
	for _, name := range []string{"CSS", "SS", "CMM"} {
		if costs[name] < bestCost {
			best, bestCost = name, costs[name]
		}
	}
	return best, costs
}
