package core

import (
	"math"
	"strings"
	"testing"
)

func TestLogspaceAndLinspace(t *testing.T) {
	ls := logspace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !almost(ls[i], want[i], 1e-9) {
			t.Fatalf("logspace[%d] = %v, want %v", i, ls[i], want[i])
		}
	}
	lin := linspace(0, 10, 11)
	if lin[0] != 0 || lin[10] != 10 || lin[5] != 5 {
		t.Fatalf("linspace wrong: %v", lin)
	}
}

func TestLogspacePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lo<=0":  func() { logspace(0, 10, 5) },
		"hi<=lo": func() { logspace(10, 10, 5) },
		"n<2":    func() { logspace(1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFigure1Shape(t *testing.T) {
	fig := Figure1(5.8, 101)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 (R band)", len(fig.Series))
	}
	mid := fig.Series[1]
	// Starts at 1.0 (all MM), ends at 1/R.
	if !almost(mid.Points[0].Y, 1, 1e-12) {
		t.Fatalf("F=0%% relative perf = %v, want 1", mid.Points[0].Y)
	}
	if !almost(mid.Points[len(mid.Points)-1].Y, 1/5.8, 1e-9) {
		t.Fatalf("F=100%% relative perf = %v, want 1/5.8", mid.Points[len(mid.Points)-1].Y)
	}
	// Band ordering: at any interior point, higher R means lower perf.
	lo, hi := fig.Series[0], fig.Series[2]
	for i := 1; i < len(mid.Points); i++ {
		if !(hi.Points[i].Y <= mid.Points[i].Y && mid.Points[i].Y <= lo.Points[i].Y) {
			t.Fatalf("band ordering violated at %v%%", mid.Points[i].X)
		}
	}
}

func TestFigure2Crossover(t *testing.T) {
	c := PaperCosts()
	fig := Figure2(c, 200)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	x, ok := Crossover(fig.Series[0], fig.Series[1])
	if !ok {
		t.Fatal("no MM/SS crossover found")
	}
	if want := c.BreakevenRate(); math.Abs(x-want)/want > 0.05 {
		t.Fatalf("crossover at %v, analytic breakeven %v", x, want)
	}
	if !strings.Contains(fig.Title, "T_i") {
		t.Fatal("title should state T_i")
	}
}

func TestFigure3Crossover(t *testing.T) {
	m := PaperComparison()
	const size = 6.1e9
	fig := Figure3(m, size, 200)
	x, ok := Crossover(fig.Series[0], fig.Series[1])
	if !ok {
		t.Fatal("no Bw-tree/MassTree crossover")
	}
	if want := m.BreakevenRate(size); math.Abs(x-want)/want > 0.05 {
		t.Fatalf("crossover %v, analytic %v", x, want)
	}
}

func TestFigure7LowerRLowersCostAndBreakeven(t *testing.T) {
	c := PaperCosts()
	fig := Figure7(c, []float64{9, 5.8}, 150)
	if len(fig.Series) != 3 { // MM + two SS lines
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	ssKernel, ssUser := fig.Series[1], fig.Series[2]
	// The optimized path must cost no more at every rate and strictly less
	// at high rates.
	last := len(ssKernel.Points) - 1
	for i := range ssKernel.Points {
		if ssUser.Points[i].Y > ssKernel.Points[i].Y+1e-15 {
			t.Fatalf("user-level path costlier at rate %v", ssUser.Points[i].X)
		}
	}
	if ssUser.Points[last].Y >= ssKernel.Points[last].Y {
		t.Fatal("user-level path should be strictly cheaper when execution dominates")
	}
	// Crossover with MM moves to a higher rate (T_i shrinks) when R drops.
	xKernel, ok1 := Crossover(fig.Series[0], ssKernel)
	xUser, ok2 := Crossover(fig.Series[0], ssUser)
	if !ok1 || !ok2 {
		t.Fatal("missing crossover")
	}
	if xUser <= xKernel {
		t.Fatalf("breakeven rate should increase when R drops: kernel=%v user=%v", xKernel, xUser)
	}
}

func TestFigure8Regimes(t *testing.T) {
	c := PaperCosts()
	fig := Figure8(c, DefaultCSS(), 300)
	css, ss, mm := fig.Series[0], fig.Series[1], fig.Series[2]
	// At the lowest sampled rate CSS is cheapest; at the highest MM is.
	if !(css.Points[0].Y < ss.Points[0].Y && css.Points[0].Y < mm.Points[0].Y) {
		t.Fatal("CSS should be cheapest at the cold end")
	}
	last := len(css.Points) - 1
	if !(mm.Points[last].Y < ss.Points[last].Y && mm.Points[last].Y < css.Points[last].Y) {
		t.Fatal("MM should be cheapest at the hot end")
	}
}

func TestCrossoverEdgeCases(t *testing.T) {
	a := Series{Points: []Point{{1, 1}, {2, 2}}}
	b := Series{Points: []Point{{1, 2}, {2, 3}}}
	if _, ok := Crossover(a, b); ok {
		t.Fatal("parallel non-crossing series reported a crossover")
	}
	if _, ok := Crossover(a, Series{}); ok {
		t.Fatal("mismatched series reported a crossover")
	}
	// Exact touch at a sample point.
	c := Series{Points: []Point{{1, 1}, {2, 5}}}
	d := Series{Points: []Point{{1, 1}, {2, 0}}}
	x, ok := Crossover(c, d)
	if !ok || x != 1 {
		t.Fatalf("touch crossover = %v,%v", x, ok)
	}
}
