package core

import (
	"fmt"
	"math"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a named data series of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated paper figure: named series over a common x axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// logspace returns n points geometrically spaced over [lo, hi].
func logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(fmt.Sprintf("core: bad logspace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// linspace returns n points evenly spaced over [lo, hi].
func linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("core: linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Figure1 regenerates the paper's Figure 1: relative performance PF/P0 of a
// mixed MM/SS workload versus the percentage of SS operations, for
// R = r ± 30% (the paper's dotted band around R = 5.8). Measured points
// (e.g. from the Bw-tree experiments) can be overlaid via extra series.
func Figure1(r float64, n int) Figure {
	fig := Figure{
		Title:  "Figure 1: relative performance of mixed MM/SS workload",
		XLabel: "SS operations (%)",
		YLabel: "PF/P0",
	}
	for _, rc := range []struct {
		name string
		r    float64
	}{
		{fmt.Sprintf("R=%.2f (-30%%)", r*0.7), r * 0.7},
		{fmt.Sprintf("R=%.2f", r), r},
		{fmt.Sprintf("R=%.2f (+30%%)", r*1.3), r * 1.3},
	} {
		s := Series{Name: rc.name}
		for _, pct := range linspace(0, 100, n) {
			s.Points = append(s.Points, Point{pct, RelativeThroughput(pct/100, rc.r)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure2 regenerates Figure 2: cost/sec of MM and SS operations versus
// access rate, whose crossover is the updated five-minute rule. The rate
// axis spans the breakeven point symmetrically (log-spaced).
func Figure2(c Costs, n int) Figure {
	be := c.BreakevenRate()
	rates := logspace(be/100, be*100, n)
	fig := Figure{
		Title:  fmt.Sprintf("Figure 2: MM vs SS operation cost (breakeven T_i = %.1f s)", c.BreakevenInterval()),
		XLabel: "accesses/sec",
		YLabel: "relative cost/sec",
	}
	mm := Series{Name: "MM"}
	ss := Series{Name: "SS"}
	for _, r := range rates {
		mm.Points = append(mm.Points, Point{r, c.MMCostPerSec(r)})
		ss.Points = append(ss.Points, Point{r, c.SSCostPerSec(r)})
	}
	fig.Series = []Series{mm, ss}
	return fig
}

// Figure3 regenerates Figure 3: Bw-tree versus MassTree cost per operation
// as the access rate over a database of sizeBytes varies. The breakeven
// rate depends on database size (Section 5.2).
func Figure3(m MainMemoryComparison, sizeBytes float64, n int) Figure {
	be := m.BreakevenRate(sizeBytes)
	rates := logspace(be/100, be*100, n)
	fig := Figure{
		Title: fmt.Sprintf("Figure 3: Bw-tree vs MassTree cost (S = %.3g B, breakeven %.3g ops/s)",
			sizeBytes, be),
		XLabel: "accesses/sec",
		YLabel: "relative cost/op",
	}
	bw := Series{Name: "Bw-tree"}
	mt := Series{Name: "MassTree"}
	for _, r := range rates {
		ti := 1 / r
		bw.Points = append(bw.Points, Point{r, m.BwTreeCostPerOp(ti, sizeBytes)})
		mt.Points = append(mt.Points, Point{r, m.MassTreeCostPerOp(ti, sizeBytes)})
	}
	fig.Series = []Series{bw, mt}
	return fig
}

// Figure7 regenerates Figure 7: the impact of reducing SS execution cost on
// cost/performance. It plots the SS cost line for each R in rs (e.g. 9 for
// the kernel I/O path, 5.8 for the SPDK path) alongside the MM line.
func Figure7(c Costs, rs []float64, n int) Figure {
	base := c.WithR(rs[0])
	be := base.BreakevenRate()
	rates := logspace(be/100, be*100, n)
	fig := Figure{
		Title:  "Figure 7: effect of SS execution cost on cost/performance",
		XLabel: "accesses/sec",
		YLabel: "relative cost/sec",
	}
	mm := Series{Name: "MM"}
	for _, r := range rates {
		mm.Points = append(mm.Points, Point{r, c.MMCostPerSec(r)})
	}
	fig.Series = append(fig.Series, mm)
	for _, rv := range rs {
		cv := c.WithR(rv)
		s := Series{Name: fmt.Sprintf("SS (R=%.1f, T_i=%.0f s)", rv, cv.BreakevenInterval())}
		for _, r := range rates {
			s.Points = append(s.Points, Point{r, cv.SSCostPerSec(r)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure8 regenerates Figure 8: compressed (CSS), uncompressed (SS) and
// main-memory (MM) operation costs across access rates, showing the three
// cost regimes.
func Figure8(c Costs, p CSSParams, n int) Figure {
	be := c.BreakevenRate()
	lo := c.CSSSSBreakevenRate(p) / 100
	if lo <= 0 {
		lo = be / 1e4
	}
	rates := logspace(lo, be*100, n)
	fig := Figure{
		Title:  "Figure 8: compressed data extends the low-cost regime",
		XLabel: "accesses/sec",
		YLabel: "relative cost/sec",
	}
	css := Series{Name: "CSS"}
	ss := Series{Name: "SS"}
	mm := Series{Name: "MM"}
	for _, r := range rates {
		css.Points = append(css.Points, Point{r, c.CSSCostPerSec(r, p)})
		ss.Points = append(ss.Points, Point{r, c.SSCostPerSec(r)})
		mm.Points = append(mm.Points, Point{r, c.MMCostPerSec(r)})
	}
	fig.Series = []Series{css, ss, mm}
	return fig
}

// Crossover returns the x at which two series' linear interpolants cross,
// and whether a crossing exists within the common domain. Series must be
// sampled on the same x grid.
func Crossover(a, b Series) (float64, bool) {
	n := len(a.Points)
	if n != len(b.Points) || n == 0 {
		return 0, false
	}
	prev := a.Points[0].Y - b.Points[0].Y
	for i := 1; i < n; i++ {
		cur := a.Points[i].Y - b.Points[i].Y
		if prev == 0 {
			return a.Points[i-1].X, true
		}
		if (prev < 0) != (cur < 0) {
			// Linear interpolation between samples i-1 and i.
			x0, x1 := a.Points[i-1].X, a.Points[i].X
			t := prev / (prev - cur)
			return x0 + t*(x1-x0), true
		}
		prev = cur
	}
	return 0, false
}
