package core

import "testing"

func TestDefaultNVRAMValidates(t *testing.T) {
	c := PaperCosts()
	if err := DefaultNVRAM().Validate(c); err != nil {
		t.Fatal(err)
	}
	bads := []NVRAMParams{
		{CostPerByte: 0, SlowdownFactor: 2},
		{CostPerByte: 6e-9, SlowdownFactor: 2},   // dearer than DRAM
		{CostPerByte: 0.4e-9, SlowdownFactor: 2}, // cheaper than flash
		{CostPerByte: 2e-9, SlowdownFactor: 0.5}, // faster than DRAM
	}
	for i, p := range bads {
		if err := p.Validate(c); err == nil {
			t.Errorf("case %d: %+v should be invalid", i, p)
		}
	}
}

func TestNVRAMThreeTierOrdering(t *testing.T) {
	// Section 8.2: NVRAM sits between DRAM and flash on both storage cost
	// and performance, giving three residence regimes.
	c := PaperCosts()
	p := DefaultNVRAM()
	// Storage intercepts: flash < nvram < dram(+flash copy).
	if !(c.SSCostPerSec(0) < c.NVCostPerSec(0, p) && c.NVCostPerSec(0, p) < c.MMCostPerSec(0)) {
		t.Fatal("storage intercepts must order flash < nvram < dram")
	}
	// Execution: MM < NV < SS.
	if !(c.MMExecCostPerOp() < c.NVExecCostPerOp(p) && c.NVExecCostPerOp(p) < c.SSExecCostPerOp()) {
		t.Fatal("execution costs must order MM < NV < SS")
	}
	nvSS := c.NVSSBreakevenRate(p)
	mmNV := c.MMNVBreakevenRate(p)
	if nvSS <= 0 || mmNV <= 0 || nvSS >= mmNV {
		t.Fatalf("tier boundaries out of order: NV/SS=%v MM/NV=%v", nvSS, mmNV)
	}
	if got := c.CheapestTier(nvSS/10, p); got != TierFlash {
		t.Fatalf("cold: %v, want flash", got)
	}
	if got := c.CheapestTier((nvSS+mmNV)/2, p); got != TierNVRAM {
		t.Fatalf("middle: %v, want nvram", got)
	}
	if got := c.CheapestTier(mmNV*10, p); got != TierDRAM {
		t.Fatalf("hot: %v, want dram", got)
	}
}

func TestNVRAMBreakevensEqualize(t *testing.T) {
	c := PaperCosts()
	p := DefaultNVRAM()
	n1 := c.NVSSBreakevenRate(p)
	if a, b := c.NVCostPerSec(n1, p), c.SSCostPerSec(n1); !almost(a, b, 1e-9) {
		t.Fatalf("NV/SS breakeven: %v vs %v", a, b)
	}
	n2 := c.MMNVBreakevenRate(p)
	if a, b := c.MMCostPerSec(n2), c.NVCostPerSec(n2, p); !almost(a, b, 1e-9) {
		t.Fatalf("MM/NV breakeven: %v vs %v", a, b)
	}
}

func TestNVRAMDegenerateCases(t *testing.T) {
	c := PaperCosts()
	// Slowdown 1: NVRAM as fast as DRAM -> DRAM never wins.
	fast := NVRAMParams{CostPerByte: 2e-9, SlowdownFactor: 1}
	if got := c.MMNVBreakevenRate(fast); got != 0 {
		t.Fatalf("MM/NV breakeven = %v, want 0 (NVRAM dominates)", got)
	}
	// NV execution at least as dear as the whole SS operation (CPU share
	// exceeding R plus the I/O rental): flash always wins.
	slowEnough := c.R + (c.IOPSCost/c.IOPS)/(c.Processor/c.ROPS) + 1
	slow := NVRAMParams{CostPerByte: 2e-9, SlowdownFactor: slowEnough}
	if got := c.NVSSBreakevenRate(slow); got != 0 {
		t.Fatalf("NV/SS breakeven = %v, want 0", got)
	}
}

func TestFigureNVRAMRegimes(t *testing.T) {
	c := PaperCosts()
	p := DefaultNVRAM()
	fig := FigureNVRAM(c, p, 301)
	ss, nv, mm := fig.Series[0], fig.Series[1], fig.Series[2]
	if !(ss.Points[0].Y < nv.Points[0].Y && nv.Points[0].Y < mm.Points[0].Y) {
		t.Fatal("cold end should order flash < nvram < dram")
	}
	last := len(ss.Points) - 1
	if !(mm.Points[last].Y < nv.Points[last].Y && nv.Points[last].Y < ss.Points[last].Y) {
		t.Fatal("hot end should order dram < nvram < flash")
	}
}

func TestCMMValidate(t *testing.T) {
	if err := DefaultCMM().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []CMMParams{
		{CompressionRatio: 0, DecompressOverhead: 1},
		{CompressionRatio: 2, DecompressOverhead: 1},
		{CompressionRatio: 0.5, DecompressOverhead: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestCMMIntermediateBand(t *testing.T) {
	// The paper's conjecture: compressed main memory can beat both pure MM
	// (less DRAM rent) and SS (no I/O) in an intermediate band.
	c := PaperCosts()
	css := DefaultCSS()
	cmm := DefaultCMM()
	foundCMM := false
	be := c.BreakevenRate()
	for mult := 1e-3; mult < 1e3; mult *= 1.3 {
		best, costs := c.CheapestOperationWithCMM(be*mult, css, cmm)
		if best == "CMM" {
			foundCMM = true
			if costs["CMM"] >= costs["MM"] || costs["CMM"] >= costs["SS"] {
				t.Fatal("winner not actually cheapest")
			}
		}
	}
	if !foundCMM {
		t.Fatal("no access rate where compressed main memory wins; Section 7.2's band missing")
	}
	// At the extremes the usual winners hold.
	if best, _ := c.CheapestOperationWithCMM(be*1e-4, css, cmm); best != "CSS" {
		t.Fatalf("coldest regime winner = %s, want CSS", best)
	}
	if best, _ := c.CheapestOperationWithCMM(be*1e4, css, cmm); best != "MM" {
		t.Fatalf("hottest regime winner = %s, want MM", best)
	}
}

func TestTierChoiceString(t *testing.T) {
	if TierFlash.String() != "flash" || TierNVRAM.String() != "nvram" || TierDRAM.String() != "dram" {
		t.Fatal("tier strings")
	}
}
