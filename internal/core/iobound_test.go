package core

import "testing"

func TestIOBoundMissFraction(t *testing.T) {
	c := PaperCosts()
	const p0 = 4e6
	f := c.IOBoundMissFraction(p0)
	if f <= 0 || f >= 1 {
		t.Fatalf("F* = %v, want interior point for paper parameters", f)
	}
	// At F*, the implied I/O rate equals the device's IOPS.
	if got := c.IORateAt(p0, f); !almost(got, c.IOPS, 1e-9) {
		t.Fatalf("I/O rate at F* = %v, want IOPS %v", got, c.IOPS)
	}
	// Below F*: not bound. Above: bound.
	if c.IOBound(p0, f*0.9) {
		t.Fatal("bound below F*")
	}
	if !c.IOBound(p0, f*1.1) {
		t.Fatal("not bound above F*")
	}
}

func TestIOBoundParaCheck(t *testing.T) {
	// With the paper's numbers a single SSD saturates at a fairly small
	// miss ratio (~6-7%) — the regime Section 2.2 excludes starts early.
	c := PaperCosts()
	f := c.IOBoundMissFraction(4e6)
	if f < 0.03 || f > 0.15 {
		t.Fatalf("F* = %v, expected a few percent", f)
	}
}

func TestIOBoundDegenerate(t *testing.T) {
	c := PaperCosts()
	// A very slow processor relative to the device never saturates it.
	if got := c.IOBoundMissFraction(c.IOPS / 2); got != 1 {
		t.Fatalf("F* = %v, want 1 (never bound)", got)
	}
	// Huge R: SS ops so slow the denominator goes negative.
	slow := c.WithR(1000)
	if got := slow.IOBoundMissFraction(4e6); got != 1 {
		t.Fatalf("F* = %v, want 1", got)
	}
}
