package core

import "fmt"

// CSSParams extends the cost model with compressed secondary storage
// operations (paper Section 7.2, Figure 8). Facebook-style deployments
// compress cold data: storage rent shrinks by the compression ratio while
// execution cost grows by the decompression work.
type CSSParams struct {
	// CompressionRatio is compressed size / uncompressed size, in (0, 1].
	CompressionRatio float64
	// DecompressOverhead is the extra CPU cost of a CSS operation,
	// expressed as a multiple of the MM execution cost $P/ROPS (added on
	// top of the SS operation's R).
	DecompressOverhead float64
}

// DefaultCSS returns illustrative parameters in the spirit of Figure 8
// (the paper labels its numbers hypothetical): 2.5x compression with
// decompression costing 3x the MM operation's CPU.
func DefaultCSS() CSSParams {
	return CSSParams{CompressionRatio: 0.4, DecompressOverhead: 3}
}

// Validate checks the parameters are in range.
func (p CSSParams) Validate() error {
	if p.CompressionRatio <= 0 || p.CompressionRatio > 1 {
		return fmt.Errorf("core: compression ratio %v out of (0,1]", p.CompressionRatio)
	}
	if p.DecompressOverhead < 0 {
		return fmt.Errorf("core: negative decompress overhead %v", p.DecompressOverhead)
	}
	return nil
}

// CSSCostPerSec returns the relative cost per second of supporting n
// operations/sec on a page stored compressed on flash: the lowest storage
// rent of the three operation forms, the highest execution cost.
//
//	$CSS = Ps*ratio*$Fl + N * ($I/IOPS + (R + D)*$P/ROPS)
func (c Costs) CSSCostPerSec(n float64, p CSSParams) float64 {
	storage := c.PageSize * p.CompressionRatio * c.FlashPerByte
	exec := c.IOPSCost/c.IOPS + (c.R+p.DecompressOverhead)*c.Processor/c.ROPS
	return storage + n*exec
}

// CSSExecCostPerOp returns the execution-only cost of one CSS operation.
func (c Costs) CSSExecCostPerOp(p CSSParams) float64 {
	return c.IOPSCost/c.IOPS + (c.R+p.DecompressOverhead)*c.Processor/c.ROPS
}

// CSSSSBreakevenRate returns the access rate below which a compressed page
// is cheaper than an uncompressed flash-resident page (the left crossover
// of Figure 8). It returns +Inf-free 0 if CSS is never cheaper (no storage
// saving).
func (c Costs) CSSSSBreakevenRate(p CSSParams) float64 {
	storageSaving := c.PageSize * c.FlashPerByte * (1 - p.CompressionRatio)
	execPenalty := p.DecompressOverhead * c.Processor / c.ROPS
	if execPenalty <= 0 || storageSaving <= 0 {
		return 0
	}
	return storageSaving / execPenalty
}

// OperationChoice names the cheapest operation form at a given access rate.
type OperationChoice int

const (
	// ChooseCSS: store compressed on flash, decompress on access.
	ChooseCSS OperationChoice = iota
	// ChooseSS: store uncompressed on flash.
	ChooseSS
	// ChooseMM: cache in DRAM.
	ChooseMM
)

// String names the choice.
func (o OperationChoice) String() string {
	switch o {
	case ChooseCSS:
		return "CSS"
	case ChooseSS:
		return "SS"
	default:
		return "MM"
	}
}

// CheapestOperation returns which of MM, SS, CSS minimizes cost/sec at
// access rate n — the three-regime policy of Figure 8.
func (c Costs) CheapestOperation(n float64, p CSSParams) OperationChoice {
	mm, ss, css := c.MMCostPerSec(n), c.SSCostPerSec(n), c.CSSCostPerSec(n, p)
	switch {
	case css <= ss && css <= mm:
		return ChooseCSS
	case ss <= mm:
		return ChooseSS
	default:
		return ChooseMM
	}
}
