package core

import (
	"fmt"
	"math"
)

// Sensitivity analysis: how strongly the five-minute-rule breakeven T_i
// (Equation 6) responds to each infrastructure parameter. The paper's
// narrative is exactly such a sensitivity argument — falling IOPS prices
// shrink T_i (Section 7.1.2), longer I/O paths grow it (Section 7.1.1),
// cheaper DRAM grows it — made quantitative here as elasticities.

// Parameter names accepted by BreakevenElasticity.
const (
	ParamDRAM      = "dram"      // $M
	ParamFlash     = "flash"     // $Fl
	ParamProcessor = "processor" // $P
	ParamIOPSCost  = "iopscost"  // $I
	ParamROPS      = "rops"
	ParamIOPS      = "iops"
	ParamPageSize  = "pagesize"
	ParamR         = "r"
)

// AllParams lists every parameter the sensitivity analysis covers.
func AllParams() []string {
	return []string{ParamDRAM, ParamFlash, ParamProcessor, ParamIOPSCost,
		ParamROPS, ParamIOPS, ParamPageSize, ParamR}
}

// withParam returns a copy of c with the named parameter scaled by factor.
func (c Costs) withParam(name string, factor float64) (Costs, error) {
	switch name {
	case ParamDRAM:
		c.DRAMPerByte *= factor
	case ParamFlash:
		c.FlashPerByte *= factor
	case ParamProcessor:
		c.Processor *= factor
	case ParamIOPSCost:
		c.IOPSCost *= factor
	case ParamROPS:
		c.ROPS *= factor
	case ParamIOPS:
		c.IOPS *= factor
	case ParamPageSize:
		c.PageSize *= factor
	case ParamR:
		c.R = 1 + (c.R-1)*factor // scale the excess over 1 to stay valid
	default:
		return c, fmt.Errorf("core: unknown parameter %q", name)
	}
	return c, nil
}

// BreakevenElasticity returns d(ln T_i)/d(ln param): the percentage change
// in the breakeven interval per percent change in the parameter, estimated
// by a central finite difference. Negative means increasing the parameter
// shrinks T_i.
func (c Costs) BreakevenElasticity(param string) (float64, error) {
	const h = 1e-4
	up, err := c.withParam(param, 1+h)
	if err != nil {
		return 0, err
	}
	down, err := c.withParam(param, 1-h)
	if err != nil {
		return 0, err
	}
	tiUp, tiDown := up.BreakevenInterval(), down.BreakevenInterval()
	if tiUp <= 0 || tiDown <= 0 {
		return 0, fmt.Errorf("core: breakeven degenerate under %q perturbation", param)
	}
	// d ln(Ti) / d ln(p) ≈ (ln tiUp - ln tiDown) / (ln(1+h) - ln(1-h))
	return (math.Log(tiUp) - math.Log(tiDown)) / (math.Log(1+h) - math.Log(1-h)), nil
}

// BreakevenSensitivities returns the elasticity of T_i for every
// parameter, keyed by parameter name.
func (c Costs) BreakevenSensitivities() (map[string]float64, error) {
	out := make(map[string]float64, 8)
	for _, p := range AllParams() {
		e, err := c.BreakevenElasticity(p)
		if err != nil {
			return nil, err
		}
		out[p] = e
	}
	return out, nil
}
