package core

import "testing"

func TestPaperLatencyNumbers(t *testing.T) {
	m := PaperLatency()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Section 8.1: MM latencies in the sub-microsecond/CPU range; SS
	// latencies in the 100-microsecond range.
	mm := m.MMLatency()
	if mm <= 0 || mm > 1e-6 {
		t.Fatalf("MM latency = %v, want sub-microsecond", mm)
	}
	ss := m.SSLatency()
	if ss < 100e-6 || ss > 200e-6 {
		t.Fatalf("SS latency = %v, want ~100 µs", ss)
	}
	if r := m.LatencyRatio(); r < 100 {
		t.Fatalf("latency ratio = %v, want orders of magnitude", r)
	}
}

func TestMeanLatencyMonotone(t *testing.T) {
	m := PaperLatency()
	prev := 0.0
	for f := 0.0; f <= 1.0; f += 0.1 {
		cur := m.MeanLatency(f)
		if cur <= prev && f > 0 {
			t.Fatalf("mean latency not increasing at f=%v", f)
		}
		prev = cur
	}
	if got := m.MeanLatency(0); got != m.MMLatency() {
		t.Fatal("f=0 should equal MM latency")
	}
	if got := m.MeanLatency(1); got != m.SSLatency() {
		t.Fatal("f=1 should equal SS latency")
	}
}

func TestTailLatencyProfile(t *testing.T) {
	m := PaperLatency()
	const f = 0.02 // 2% misses
	// P50 fast, P99 device-bound — the caching-system latency signature.
	if got := m.TailLatency(f, 0.50); got != m.MMLatency() {
		t.Fatalf("P50 = %v, want MM latency", got)
	}
	if got := m.TailLatency(f, 0.99); got != m.SSLatency() {
		t.Fatalf("P99 = %v, want SS latency", got)
	}
	// Below 1% misses even P99 is fast.
	if got := m.TailLatency(0.005, 0.99); got != m.MMLatency() {
		t.Fatalf("P99 at 0.5%% misses = %v, want MM latency", got)
	}
}

func TestLatencyPanics(t *testing.T) {
	m := PaperLatency()
	for name, fn := range map[string]func(){
		"mean f": func() { m.MeanLatency(1.5) },
		"tail f": func() { m.TailLatency(-0.1, 0.5) },
		"tail q": func() { m.TailLatency(0.5, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLatencyValidate(t *testing.T) {
	m := PaperLatency()
	m.DeviceLatency = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero device latency accepted")
	}
	m = PaperLatency()
	m.Costs.R = 0
	if err := m.Validate(); err == nil {
		t.Fatal("bad costs accepted")
	}
}
