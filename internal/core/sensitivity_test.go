package core

import (
	"math"
	"testing"
)

func TestBreakevenElasticitySigns(t *testing.T) {
	// The paper's qualitative claims as signs of d(ln T_i)/d(ln p):
	//   cheaper DRAM (dram up)     -> T_i shrinks  (negative)
	//   bigger pages               -> T_i shrinks  (negative)
	//   dearer I/O capability ($I) -> T_i grows    (positive)
	//   more IOPS                  -> T_i shrinks  (negative, Section 7.1.2)
	//   dearer processor           -> T_i grows
	//   faster processor (ROPS up) -> T_i shrinks
	//   longer I/O path (R up)     -> T_i grows    (Section 7.1.1)
	c := PaperCosts()
	wantSign := map[string]float64{
		ParamDRAM:      -1,
		ParamPageSize:  -1,
		ParamIOPSCost:  +1,
		ParamIOPS:      -1,
		ParamProcessor: +1,
		ParamROPS:      -1,
		ParamR:         +1,
	}
	for p, sign := range wantSign {
		e, err := c.BreakevenElasticity(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if e*sign <= 0 {
			t.Errorf("elasticity(%s) = %v, want sign %v", p, e, sign)
		}
	}
	// Flash price does not appear in Equation 6 at all.
	e, err := c.BreakevenElasticity(ParamFlash)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e) > 1e-6 {
		t.Errorf("elasticity(flash) = %v, want ~0", e)
	}
}

func TestBreakevenElasticityExactUnits(t *testing.T) {
	// T_i = [I/IOPS + (R-1)P/ROPS] / (M*Ps): exactly inverse-linear in $M
	// and Ps — elasticity -1.
	c := PaperCosts()
	for _, p := range []string{ParamDRAM, ParamPageSize} {
		e, err := c.BreakevenElasticity(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e+1) > 1e-6 {
			t.Errorf("elasticity(%s) = %v, want -1 exactly", p, e)
		}
	}
}

func TestBreakevenSensitivitiesComplete(t *testing.T) {
	s, err := PaperCosts().BreakevenSensitivities()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != len(AllParams()) {
		t.Fatalf("got %d sensitivities, want %d", len(s), len(AllParams()))
	}
	// The I/O-side elasticities must sum against the memory side: the two
	// additive terms' elasticities w.r.t. their own prices sum to +1.
	if got := s[ParamIOPSCost] + s[ParamProcessor]; math.Abs(got-1) > 1e-6 {
		t.Fatalf("cost-term elasticities sum to %v, want 1", got)
	}
}

func TestBreakevenElasticityUnknownParam(t *testing.T) {
	if _, err := PaperCosts().BreakevenElasticity("warpdrive"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}
