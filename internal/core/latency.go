package core

import "fmt"

// Latency estimation (paper Section 8.1): the analysis elsewhere is about
// throughput — the CPU time an operation consumes — but the paper's
// discussion of "value" turns on latency: an MM operation completes in
// processor time alone, while an SS operation also waits out a device
// access. "Latencies in the 10's vs 100's of microseconds is of no
// consequence to value" for most applications — these helpers produce
// exactly those numbers.

// LatencyModel converts execution costs to wall-clock operation latencies.
type LatencyModel struct {
	// Costs supplies ROPS (the MM execution rate) and R.
	Costs Costs
	// DeviceLatency is the per-I/O device time in seconds (e.g. 100 µs for
	// the paper-era flash SSD).
	DeviceLatency float64
}

// PaperLatency returns the model with the paper's parameters: ROPS = 4e6
// (so an MM operation's CPU time is 0.25 µs) over a 100 µs flash device.
func PaperLatency() LatencyModel {
	return LatencyModel{Costs: PaperCosts(), DeviceLatency: 100e-6}
}

// Validate checks the model's parameters.
func (m LatencyModel) Validate() error {
	if err := m.Costs.Validate(); err != nil {
		return err
	}
	if m.DeviceLatency <= 0 {
		return fmt.Errorf("core: non-positive device latency %v", m.DeviceLatency)
	}
	return nil
}

// MMLatency returns the latency of a main-memory operation: its CPU time.
func (m LatencyModel) MMLatency() float64 {
	return 1 / m.Costs.ROPS
}

// SSLatency returns the latency of a secondary-storage operation: its CPU
// time (R times the MM work) plus the device access it waits out.
func (m LatencyModel) SSLatency() float64 {
	return m.Costs.R/m.Costs.ROPS + m.DeviceLatency
}

// LatencyRatio returns SS/MM latency — the "10's vs 100's of microseconds"
// gap of Section 8.1 (≈ 400x with paper parameters: 0.25 µs vs 101.5 µs).
func (m LatencyModel) LatencyRatio() float64 {
	return m.SSLatency() / m.MMLatency()
}

// MeanLatency returns the average operation latency of a mix with miss
// fraction f.
func (m LatencyModel) MeanLatency(f float64) float64 {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("core: miss fraction %v out of [0,1]", f))
	}
	return (1-f)*m.MMLatency() + f*m.SSLatency()
}

// TailLatency returns the q-quantile (0 <= q <= 1) of per-operation
// latency for a mix with miss fraction f, under the two-point model where
// each operation is MM with probability 1-f and SS otherwise. The hits
// form the fast mass; the tail jumps to SS latency at quantiles above
// 1-f — the classic caching-system latency profile (fast P50, device-bound
// P99 once f > 1%).
func (m LatencyModel) TailLatency(f, q float64) float64 {
	if f < 0 || f > 1 || q < 0 || q > 1 {
		panic(fmt.Sprintf("core: f=%v q=%v out of [0,1]", f, q))
	}
	if q <= 1-f {
		return m.MMLatency()
	}
	return m.SSLatency()
}
