// Package core implements the paper's primary contribution: the
// cost/performance model for data caching versus main-memory data stores
// (Lomet, "Cost/Performance in Modern Data Stores: How Data Caching Systems
// Succeed").
//
// The model has three parts, mirroring the paper:
//
//   - Mixed-workload performance (Section 2.2, Equations 1–3): how
//     throughput degrades as the fraction F of operations that must touch
//     secondary storage grows, governed by the relative execution cost R of
//     an SS operation versus an MM operation.
//
//   - Operation costs and the updated five-minute rule (Sections 3–4,
//     Equations 4–6): per-second dollar cost of keeping a page in DRAM and
//     executing MM operations versus keeping it only on flash and executing
//     SS operations, and the breakeven access interval T_i between them.
//
//   - Main-memory versus caching system comparison (Section 5, Equations
//     7–8): the Bw-tree (fully cached) versus MassTree, parameterized by
//     MassTree's memory expansion M_x and performance gain P_x.
//
// All costs drop the common lifetime factor 1/L exactly as the paper does
// (Section 3.2): every dollar figure returned by this package is a *relative*
// cost with an implicit 1/L, which cancels in every comparison.
package core

import (
	"errors"
	"fmt"
)

// Costs holds the infrastructure cost and performance parameters of paper
// Section 4.1. All prices are in dollars; rates are per second.
type Costs struct {
	// DRAMPerByte is $M, the cost per byte of main memory.
	DRAMPerByte float64
	// FlashPerByte is $Fl, the cost per byte of flash storage.
	FlashPerByte float64
	// Processor is $P, the cost of the processor (core complex) executing
	// the workload.
	Processor float64
	// IOPSCost is $I, the cost of the SSD's I/O capability (SSD price minus
	// its flash storage price for the paper's 0.5 TB drive).
	IOPSCost float64
	// ROPS is the measured main-memory read operation rate (ops/sec) of the
	// data system on this processor.
	ROPS float64
	// IOPS is the measured maximum I/O rate of the SSD.
	IOPS float64
	// PageSize is P_s, the average page size in bytes moved between cache
	// and secondary storage.
	PageSize float64
	// R is the relative execution cost of an SS operation versus an MM
	// operation (Section 2.2; ~5.8 with a user-level I/O path, ~9 with a
	// kernel path).
	R float64
}

// PaperCosts returns the paper's Section 4.1 parameters:
// $M = $5e-9/byte, $Fl = $0.5e-9/byte, $P = $300, $I = $50,
// ROPS = 4e6, IOPS = 2e5, P_s = 2.7 KB, R = 5.8.
func PaperCosts() Costs {
	return Costs{
		DRAMPerByte:  5e-9,
		FlashPerByte: 0.5e-9,
		Processor:    300,
		IOPSCost:     50,
		ROPS:         4e6,
		IOPS:         2e5,
		PageSize:     2.7e3,
		R:            5.8,
	}
}

// Validate reports whether every parameter is positive (R must be >= 1:
// an SS operation executes at least the MM work).
func (c Costs) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"DRAMPerByte", c.DRAMPerByte},
		{"FlashPerByte", c.FlashPerByte},
		{"Processor", c.Processor},
		{"IOPSCost", c.IOPSCost},
		{"ROPS", c.ROPS},
		{"IOPS", c.IOPS},
		{"PageSize", c.PageSize},
	}
	for _, ch := range checks {
		if ch.v <= 0 {
			return fmt.Errorf("core: %s = %v, must be positive", ch.name, ch.v)
		}
	}
	if c.R < 1 {
		return fmt.Errorf("core: R = %v, must be >= 1", c.R)
	}
	return nil
}

// ErrNoMisses is returned by DeriveR when F is zero: R cannot be inferred
// from a workload with no SS operations.
var ErrNoMisses = errors.New("core: cannot derive R with F = 0")

// MixedThroughput is Equation 2: the operations/sec PF achieved by a mix
// with SS fraction f, given all-in-memory throughput p0 and relative SS
// execution cost r.
//
//	PF = P0 / ((1-F) + F*R)
func MixedThroughput(p0, f, r float64) float64 {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("core: miss fraction %v out of [0,1]", f))
	}
	if r < 1 {
		panic(fmt.Sprintf("core: R = %v < 1", r))
	}
	return p0 / ((1 - f) + f*r)
}

// RelativeThroughput returns PF/P0 for the given mix — the y-axis of the
// paper's Figure 1.
func RelativeThroughput(f, r float64) float64 {
	return MixedThroughput(1, f, r)
}

// DeriveR is Equation 3: recover R from a measured pair (P0, PF) at miss
// fraction f.
//
//	R = 1 + (1/F) * (P0/PF - 1)
func DeriveR(p0, pf, f float64) (float64, error) {
	if f <= 0 || f > 1 {
		return 0, ErrNoMisses
	}
	if p0 <= 0 || pf <= 0 {
		return 0, fmt.Errorf("core: non-positive throughput (P0=%v, PF=%v)", p0, pf)
	}
	return 1 + (p0/pf-1)/f, nil
}

// MMCostPerSec is Equation 4 (with the implicit 1/L dropped): the relative
// cost per second of supporting n operations/sec on a page cached in main
// memory. Storage rent covers both DRAM and the flash copy needed for
// durability.
//
//	$MM = Ps*($M + $Fl) + N * $P/ROPS
func (c Costs) MMCostPerSec(n float64) float64 {
	return c.PageSize*(c.DRAMPerByte+c.FlashPerByte) + n*c.Processor/c.ROPS
}

// SSCostPerSec is Equation 5: the relative cost per second of supporting n
// operations/sec on a page resident only on flash. Each operation pays an
// I/O plus R times the MM processor cost.
//
//	$SS = Ps*$Fl + N * ($I/IOPS + R*$P/ROPS)
func (c Costs) SSCostPerSec(n float64) float64 {
	return c.PageSize*c.FlashPerByte + n*(c.IOPSCost/c.IOPS+c.R*c.Processor/c.ROPS)
}

// MMExecCostPerOp returns the execution-only cost of one MM operation,
// $P/ROPS.
func (c Costs) MMExecCostPerOp() float64 { return c.Processor / c.ROPS }

// SSExecCostPerOp returns the execution-only cost of one SS operation:
// the I/O rental plus R times the MM processor cost.
func (c Costs) SSExecCostPerOp() float64 {
	return c.IOPSCost/c.IOPS + c.R*c.Processor/c.ROPS
}

// BreakevenInterval is Equation 6: the access interval T_i = 1/N at which
// MM and SS operation costs are equal — the paper's updated five-minute
// rule. For the paper's parameters this is ≈ 45 seconds. Pages accessed
// less often than every T_i seconds are cheaper on flash; more often,
// cheaper in DRAM.
//
//	T_i = 1/($M*Ps) * [ $I/IOPS + (R-1) * $P/ROPS ]
func (c Costs) BreakevenInterval() float64 {
	return (c.IOPSCost/c.IOPS + (c.R-1)*c.Processor/c.ROPS) / (c.DRAMPerByte * c.PageSize)
}

// BreakevenRate is N = 1/T_i, the operations/sec at which MM and SS costs
// cross (the crossover of Figure 2).
func (c Costs) BreakevenRate() float64 { return 1 / c.BreakevenInterval() }

// BreakevenIntervalForSize evaluates Equation 6 with the storage unit set
// to the given size in bytes instead of the page size. Record caching
// (paper Section 6.3) uses this: a record 1/10th the page size has 10x the
// breakeven interval, expanding the frequency range where main-memory
// operations win.
func (c Costs) BreakevenIntervalForSize(sizeBytes float64) float64 {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("core: non-positive size %v", sizeBytes))
	}
	return (c.IOPSCost/c.IOPS + (c.R-1)*c.Processor/c.ROPS) / (c.DRAMPerByte * sizeBytes)
}

// WithR returns a copy of c with R replaced — used to contrast the kernel
// I/O path (R≈9) with the user-level path (R≈5.8), paper Section 7.1.
func (c Costs) WithR(r float64) Costs {
	c.R = r
	return c
}

// WithIOPS returns a copy of c with the device IOPS (and optionally its
// $I) replaced — used for the falling-price-of-IOPS analysis, Section 7.1.2.
func (c Costs) WithIOPS(iops, iopsCost float64) Costs {
	c.IOPS = iops
	c.IOPSCost = iopsCost
	return c
}

// WithReplication returns a copy of c with the secondary-storage rent
// multiplied by n device legs — the cost of an n-way mirror in the
// paper's Eq. 4–6 terms. Every mirrored byte occupies flash on all n
// legs, so $Fl scales by n in both the MM rent term Ps*($M+$Fl) (Eq. 4:
// the durable flash copy behind the cache is mirrored too) and the SS
// term Ps*$Fl (Eq. 5). Reads are served by one leg, but every write
// lands on all n, so the rented I/O capability needed per operation
// scales with the write share — we charge $I conservatively at n, which
// upper-bounds the mirrored $/op and shortens the Eq. 6 breakeven: DRAM
// caching pays off sooner when flash rent doubles. n < 1 panics.
func (c Costs) WithReplication(n int) Costs {
	if n < 1 {
		panic(fmt.Sprintf("core: replication factor %d < 1", n))
	}
	c.FlashPerByte *= float64(n)
	c.IOPSCost *= float64(n)
	return c
}

// StorageCostRatio returns the MM-vs-SS storage rent ratio,
// (M+Fl)/Fl — about 11x with paper parameters (Section 4.2).
func (c Costs) StorageCostRatio() float64 {
	return (c.DRAMPerByte + c.FlashPerByte) / c.FlashPerByte
}

// ExecCostRatio returns the SS-vs-MM execution cost ratio — about 12x with
// paper parameters (Section 4.2).
func (c Costs) ExecCostRatio() float64 {
	return c.SSExecCostPerOp() / c.MMExecCostPerOp()
}
