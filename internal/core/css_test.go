package core

import "testing"

func TestDefaultCSSValidate(t *testing.T) {
	if err := DefaultCSS().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []CSSParams{
		{CompressionRatio: 0, DecompressOverhead: 1},
		{CompressionRatio: 1.5, DecompressOverhead: 1},
		{CompressionRatio: 0.5, DecompressOverhead: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestCSSStorageCheapestExecDearest(t *testing.T) {
	c := PaperCosts()
	p := DefaultCSS()
	// Storage (intercept at N=0): CSS < SS < MM.
	if !(c.CSSCostPerSec(0, p) < c.SSCostPerSec(0) && c.SSCostPerSec(0) < c.MMCostPerSec(0)) {
		t.Fatal("storage intercepts must order CSS < SS < MM")
	}
	// Execution per op: MM < SS < CSS.
	if !(c.MMExecCostPerOp() < c.SSExecCostPerOp() && c.SSExecCostPerOp() < c.CSSExecCostPerOp(p)) {
		t.Fatal("execution costs must order MM < SS < CSS")
	}
}

func TestThreeRegimes(t *testing.T) {
	// Figure 8: at very low rates CSS wins, in the middle SS wins, when hot
	// MM wins.
	c := PaperCosts()
	p := DefaultCSS()
	cssSS := c.CSSSSBreakevenRate(p)
	ssMM := c.BreakevenRate()
	if cssSS <= 0 || cssSS >= ssMM {
		t.Fatalf("regime boundaries out of order: CSS/SS=%v SS/MM=%v", cssSS, ssMM)
	}
	if got := c.CheapestOperation(cssSS/10, p); got != ChooseCSS {
		t.Fatalf("cold regime: %v, want CSS", got)
	}
	mid := (cssSS + ssMM) / 2
	if got := c.CheapestOperation(mid, p); got != ChooseSS {
		t.Fatalf("middle regime: %v, want SS", got)
	}
	if got := c.CheapestOperation(ssMM*10, p); got != ChooseMM {
		t.Fatalf("hot regime: %v, want MM", got)
	}
}

func TestCSSSSBreakevenEqualizes(t *testing.T) {
	c := PaperCosts()
	p := DefaultCSS()
	n := c.CSSSSBreakevenRate(p)
	if css, ss := c.CSSCostPerSec(n, p), c.SSCostPerSec(n); !almost(css, ss, 1e-9) {
		t.Fatalf("at CSS/SS breakeven: CSS=%v SS=%v", css, ss)
	}
}

func TestCSSNoSavingNoBreakeven(t *testing.T) {
	c := PaperCosts()
	p := CSSParams{CompressionRatio: 1, DecompressOverhead: 3}
	if got := c.CSSSSBreakevenRate(p); got != 0 {
		t.Fatalf("ratio=1 breakeven = %v, want 0", got)
	}
}

func TestOperationChoiceString(t *testing.T) {
	if ChooseCSS.String() != "CSS" || ChooseSS.String() != "SS" || ChooseMM.String() != "MM" {
		t.Fatal("choice strings wrong")
	}
}
