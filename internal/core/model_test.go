package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestPaperCostsValidate(t *testing.T) {
	if err := PaperCosts().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadCosts(t *testing.T) {
	good := PaperCosts()
	mutations := []func(*Costs){
		func(c *Costs) { c.DRAMPerByte = 0 },
		func(c *Costs) { c.FlashPerByte = -1 },
		func(c *Costs) { c.Processor = 0 },
		func(c *Costs) { c.IOPSCost = 0 },
		func(c *Costs) { c.ROPS = 0 },
		func(c *Costs) { c.IOPS = 0 },
		func(c *Costs) { c.PageSize = 0 },
		func(c *Costs) { c.R = 0.5 },
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestMixedThroughputEndpoints(t *testing.T) {
	// F=0: full MM performance. F=1: 1/R of MM performance (Section 2.2).
	const p0, r = 4e6, 5.8
	if got := MixedThroughput(p0, 0, r); got != p0 {
		t.Fatalf("F=0: %v, want %v", got, p0)
	}
	if got := MixedThroughput(p0, 1, r); !almost(got, p0/r, 1e-12) {
		t.Fatalf("F=1: %v, want %v", got, p0/r)
	}
}

func TestMixedThroughputMonotone(t *testing.T) {
	prev := math.Inf(1)
	for f := 0.0; f <= 1.0; f += 0.05 {
		cur := MixedThroughput(4e6, f, 5.8)
		if cur > prev {
			t.Fatalf("throughput increased at F=%v", f)
		}
		prev = cur
	}
}

func TestMixedThroughputPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"F<0": func() { MixedThroughput(1, -0.1, 5.8) },
		"F>1": func() { MixedThroughput(1, 1.1, 5.8) },
		"R<1": func() { MixedThroughput(1, 0.5, 0.9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDeriveRInvertsEquation2(t *testing.T) {
	// Property: DeriveR(P0, MixedThroughput(P0,F,R), F) == R.
	f := func(rRaw, fRaw uint16) bool {
		r := 1 + float64(rRaw)/1000           // R in [1, ~66]
		fr := 0.01 + 0.98*float64(fRaw)/65535 // F in (0,1)
		p0 := 4e6
		pf := MixedThroughput(p0, fr, r)
		got, err := DeriveR(p0, pf, fr)
		return err == nil && almost(got, r, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveRErrors(t *testing.T) {
	if _, err := DeriveR(1, 1, 0); err != ErrNoMisses {
		t.Fatalf("F=0 err = %v, want ErrNoMisses", err)
	}
	if _, err := DeriveR(0, 1, 0.5); err == nil {
		t.Fatal("P0=0 should error")
	}
	if _, err := DeriveR(1, 0, 0.5); err == nil {
		t.Fatal("PF=0 should error")
	}
}

func TestFiveMinuteRulePaperNumber(t *testing.T) {
	// Section 4.2: T_i ≈ 45 seconds with Section 4.1 parameters.
	c := PaperCosts()
	ti := c.BreakevenInterval()
	if ti < 40 || ti < 0 || ti > 50 {
		t.Fatalf("T_i = %v s, paper says ≈ 45 s", ti)
	}
	if got := c.BreakevenRate(); !almost(got, 1/ti, 1e-12) {
		t.Fatalf("BreakevenRate = %v, want 1/T_i", got)
	}
}

func TestBreakevenEqualizesCosts(t *testing.T) {
	// At N = BreakevenRate, Equations 4 and 5 must be equal.
	c := PaperCosts()
	n := c.BreakevenRate()
	if mm, ss := c.MMCostPerSec(n), c.SSCostPerSec(n); !almost(mm, ss, 1e-9) {
		t.Fatalf("at breakeven: MM=%v SS=%v", mm, ss)
	}
}

func TestBreakevenEqualizesCostsProperty(t *testing.T) {
	// Property: for any sane cost vector, costs are equal at breakeven and
	// correctly ordered away from it.
	f := func(mRaw, flRaw, pRaw, iRaw uint16) bool {
		c := Costs{
			DRAMPerByte:  1e-9 * (1 + float64(mRaw)),
			FlashPerByte: 1e-10 * (1 + float64(flRaw)),
			Processor:    100 + float64(pRaw),
			IOPSCost:     10 + float64(iRaw),
			ROPS:         4e6,
			IOPS:         2e5,
			PageSize:     2700,
			R:            5.8,
		}
		n := c.BreakevenRate()
		if !almost(c.MMCostPerSec(n), c.SSCostPerSec(n), 1e-9) {
			return false
		}
		// Below breakeven SS is cheaper; above, MM is cheaper.
		lo, hi := n/10, n*10
		return c.SSCostPerSec(lo) < c.MMCostPerSec(lo) &&
			c.MMCostPerSec(hi) < c.SSCostPerSec(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStorageAndExecRatiosPaperNumbers(t *testing.T) {
	// Section 4.2: storage MM/SS ≈ 11x, execution SS/MM ≈ 12x.
	c := PaperCosts()
	if got := c.StorageCostRatio(); got < 10 || got > 12 {
		t.Fatalf("storage ratio = %v, paper says ≈ 11", got)
	}
	if got := c.ExecCostRatio(); got < 8 || got > 14 {
		t.Fatalf("exec ratio = %v, paper says ≈ 12", got)
	}
}

func TestRecordCachingExpandsBreakeven(t *testing.T) {
	// Section 6.3: with 10 records per page, the record breakeven interval
	// is 10x the page's.
	c := PaperCosts()
	page := c.BreakevenInterval()
	record := c.BreakevenIntervalForSize(c.PageSize / 10)
	if !almost(record, 10*page, 1e-9) {
		t.Fatalf("record T_i = %v, want 10x page T_i %v", record, page)
	}
}

func TestBreakevenIntervalForSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size=0 did not panic")
		}
	}()
	PaperCosts().BreakevenIntervalForSize(0)
}

func TestWithRAndWithIOPS(t *testing.T) {
	c := PaperCosts()
	k := c.WithR(9)
	if k.R != 9 || c.R != 5.8 {
		t.Fatal("WithR must not mutate receiver")
	}
	// Section 7.1.1: a longer I/O path (bigger R) shrinks the breakeven
	// interval? No — it *raises* SS execution cost, so pages must be colder
	// before eviction pays: T_i grows with R.
	if k.BreakevenInterval() <= c.BreakevenInterval() {
		t.Fatal("higher R must increase T_i")
	}
	n := c.WithIOPS(5e5, 50)
	if n.IOPS != 5e5 {
		t.Fatal("WithIOPS did not apply")
	}
	// Section 7.1.2: more IOPS per dollar cuts the I/O cost term, shrinking T_i.
	if n.BreakevenInterval() >= c.BreakevenInterval() {
		t.Fatal("cheaper IOPS must decrease T_i")
	}
}

func TestExecCostsComposition(t *testing.T) {
	c := PaperCosts()
	wantSS := c.IOPSCost/c.IOPS + c.R*c.Processor/c.ROPS
	if got := c.SSExecCostPerOp(); !almost(got, wantSS, 1e-12) {
		t.Fatalf("SSExecCostPerOp = %v, want %v", got, wantSS)
	}
	if got := c.MMExecCostPerOp(); !almost(got, c.Processor/c.ROPS, 1e-12) {
		t.Fatalf("MMExecCostPerOp = %v", got)
	}
}
