package core

import "fmt"

// MainMemoryComparison parameterizes the Section 5 comparison of a fully
// cached Bw-tree against MassTree. MassTree trades space for time: it uses
// Mx times the memory of the Bw-tree footprint and delivers Px times the
// throughput, both observed to be > 1.
type MainMemoryComparison struct {
	// Costs supplies $M, $P and ROPS (the Bw-tree's main-memory rate).
	Costs Costs
	// Mx is MassTree's memory expansion relative to the Bw-tree
	// (paper: ≈ 2.1 in the 4-core read-only experiment).
	Mx float64
	// Px is MassTree's performance gain relative to the Bw-tree
	// (paper: ≈ 2.6).
	Px float64
}

// PaperComparison returns the paper's point-experiment parameters:
// Mx ≈ 2.1, Px ≈ 2.6 over PaperCosts.
func PaperComparison() MainMemoryComparison {
	return MainMemoryComparison{Costs: PaperCosts(), Mx: 2.1, Px: 2.6}
}

// Validate checks Mx > 1 and Px > 1, the regime the paper analyzes
// (MassTree uses more memory and is faster).
func (m MainMemoryComparison) Validate() error {
	if err := m.Costs.Validate(); err != nil {
		return err
	}
	if m.Mx <= 1 {
		return fmt.Errorf("core: Mx = %v, must be > 1", m.Mx)
	}
	if m.Px <= 1 {
		return fmt.Errorf("core: Px = %v, must be > 1", m.Px)
	}
	return nil
}

// BwTreeCostPerOp is $DM of Section 5.1: the cost of one main-memory
// Bw-tree operation when operations on a database of sizeBytes arrive every
// ti seconds. Storage rent is amortized over the operations it supports.
//
//	$DM = T_i * S * $M + $P/ROPS
func (m MainMemoryComparison) BwTreeCostPerOp(ti, sizeBytes float64) float64 {
	return ti*sizeBytes*m.Costs.DRAMPerByte + m.Costs.Processor/m.Costs.ROPS
}

// MassTreeCostPerOp is $MTM of Section 5.1: MassTree pays Mx times the
// memory rent but executes Px times faster.
//
//	$MTM = T_i * Mx * S * $M + $P/(Px*ROPS)
func (m MainMemoryComparison) MassTreeCostPerOp(ti, sizeBytes float64) float64 {
	return ti*m.Mx*sizeBytes*m.Costs.DRAMPerByte + m.Costs.Processor/(m.Px*m.Costs.ROPS)
}

// BreakevenInterval is Equation 7: the access interval T_i at which the two
// systems' per-operation costs are equal for a database of sizeBytes.
// MassTree is cheaper for intervals shorter than this (hotter data).
//
//	T_i = (1/S) * [$P/ROPS * 1/$M] * (Px-1)/(Px*(Mx-1))
func (m MainMemoryComparison) BreakevenInterval(sizeBytes float64) float64 {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("core: non-positive database size %v", sizeBytes))
	}
	return (m.Costs.Processor / m.Costs.ROPS / m.Costs.DRAMPerByte) *
		(m.Px - 1) / (m.Px * (m.Mx - 1)) / sizeBytes
}

// BreakevenRate returns the access rate (ops/sec over the whole database)
// above which MassTree has lower cost per operation. With paper parameters
// this is ≈ 0.73e6 ops/sec for a 6.1 GB database and scales linearly with
// size (≈ 12e6 ops/sec at 100 GB), Section 5.2.
func (m MainMemoryComparison) BreakevenRate(sizeBytes float64) float64 {
	return 1 / m.BreakevenInterval(sizeBytes)
}

// SizeTimeConstant returns the constant K in T_i = K / S (Equation 8).
// For paper parameters K ≈ 8.3e3.
func (m MainMemoryComparison) SizeTimeConstant() float64 {
	return (m.Costs.Processor / m.Costs.ROPS / m.Costs.DRAMPerByte) *
		(m.Px - 1) / (m.Px * (m.Mx - 1))
}
