package core

import (
	"testing"
	"testing/quick"
)

func TestPaperComparisonValidate(t *testing.T) {
	if err := PaperComparison().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperComparison()
	bad.Mx = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("Mx=1 should be invalid")
	}
	bad = PaperComparison()
	bad.Px = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("Px=0.5 should be invalid")
	}
	bad = PaperComparison()
	bad.Costs.ROPS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad costs should be invalid")
	}
}

func TestEquation8Constant(t *testing.T) {
	// Section 5.1: T_i = (1/Size) * 8.3e3 with paper parameters.
	k := PaperComparison().SizeTimeConstant()
	if k < 8.0e3 || k > 8.6e3 {
		t.Fatalf("K = %v, paper says ≈ 8.3e3", k)
	}
}

func TestSection52PaperNumbers(t *testing.T) {
	m := PaperComparison()

	// 6.1 GB database: T_i = 1.37e-6 s, rate ≈ 0.73e6 ops/sec.
	ti := m.BreakevenInterval(6.1e9)
	if ti < 1.2e-6 || ti > 1.5e-6 {
		t.Fatalf("T_i(6.1GB) = %v, paper says ≈ 1.37e-6", ti)
	}
	rate := m.BreakevenRate(6.1e9)
	if rate < 0.65e6 || rate > 0.80e6 {
		t.Fatalf("rate(6.1GB) = %v, paper says ≈ 0.73e6", rate)
	}

	// 100 GB database: rate ≈ 12e6 ops/sec.
	rate100 := m.BreakevenRate(100e9)
	if rate100 < 11e6 || rate100 > 13e6 {
		t.Fatalf("rate(100GB) = %v, paper says ≈ 12e6", rate100)
	}

	// Per-page view (2.7 KB): T_i ≈ 3.1 s.
	tiPage := m.BreakevenInterval(2.7e3)
	if tiPage < 2.9 || tiPage > 3.3 {
		t.Fatalf("T_i(page) = %v, paper says ≈ 3.1 s", tiPage)
	}
}

func TestBreakevenRateScalesWithSize(t *testing.T) {
	m := PaperComparison()
	r1 := m.BreakevenRate(10e9)
	r2 := m.BreakevenRate(20e9)
	if !almost(r2, 2*r1, 1e-9) {
		t.Fatalf("rate should scale linearly with size: %v vs %v", r1, r2)
	}
}

func TestCostsEqualAtBreakevenProperty(t *testing.T) {
	f := func(mxRaw, pxRaw, sizeRaw uint16) bool {
		m := MainMemoryComparison{
			Costs: PaperCosts(),
			Mx:    1.01 + float64(mxRaw)/1e4,
			Px:    1.01 + float64(pxRaw)/1e4,
		}
		size := 1e9 * (1 + float64(sizeRaw))
		ti := m.BreakevenInterval(size)
		bw := m.BwTreeCostPerOp(ti, size)
		mt := m.MassTreeCostPerOp(ti, size)
		if !almost(bw, mt, 1e-9) {
			return false
		}
		// Hotter than breakeven (smaller T_i): MassTree cheaper.
		// Colder: Bw-tree cheaper.
		return m.MassTreeCostPerOp(ti/10, size) < m.BwTreeCostPerOp(ti/10, size) &&
			m.BwTreeCostPerOp(ti*10, size) < m.MassTreeCostPerOp(ti*10, size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakevenIntervalPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size=0 did not panic")
		}
	}()
	PaperComparison().BreakevenInterval(0)
}
