package core

// The paper's mixed-workload analysis (Section 2.2) explicitly assumes the
// system is not I/O bound: R is a CPU-execution ratio, and once the device
// saturates, throughput is capped by IOPS rather than by Equation 2. These
// helpers locate that boundary so experiments can stay (or deliberately
// step) out of the excluded regime.

// IOBoundMissFraction returns the miss fraction F* at which a workload
// running at Equation 2's throughput saturates the device: the F solving
// F * PF(F) = IOPS for the given all-in-memory rate p0 (ops/sec).
//
// Solving F * P0/((1-F) + F*R) = IOPS gives
//
//	F* = IOPS / (P0 - IOPS*(R-1))
//
// It returns 1 (never I/O bound below F=1) when the denominator is not
// positive or F* exceeds 1.
func (c Costs) IOBoundMissFraction(p0 float64) float64 {
	denom := p0 - c.IOPS*(c.R-1)
	if denom <= 0 {
		return 1
	}
	f := c.IOPS / denom
	if f > 1 {
		return 1
	}
	return f
}

// IORateAt returns the device I/O rate implied by running Equation 2's
// throughput at miss fraction f: one read I/O per SS operation.
func (c Costs) IORateAt(p0, f float64) float64 {
	return f * MixedThroughput(p0, f, c.R)
}

// IOBound reports whether the mixed workload at miss fraction f would
// saturate the device.
func (c Costs) IOBound(p0, f float64) bool {
	return c.IORateAt(p0, f) >= c.IOPS
}
