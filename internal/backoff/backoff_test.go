package backoff

import (
	"context"
	"testing"
	"time"
)

// TestIntervalSchedule pins the deterministic half: doubling from Base,
// monotone non-decreasing, capped at Max, and overflow-safe for absurd
// attempt numbers.
func TestIntervalSchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Interval(i + 1); got != w {
			t.Fatalf("Interval(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Monotone: the schedule never shrinks as attempts grow.
	prev := time.Duration(0)
	for a := 1; a <= 200; a++ {
		d := p.Interval(a)
		if d < prev {
			t.Fatalf("Interval(%d) = %v < Interval(%d) = %v; schedule must be monotone", a, d, a-1, prev)
		}
		if d > p.Max {
			t.Fatalf("Interval(%d) = %v exceeds Max %v", a, d, p.Max)
		}
		prev = d
	}
	// Overflow: shifts past 63 bits and wrapped-negative products clamp
	// to Max instead of going negative or huge.
	for _, a := range []int{40, 63, 64, 100, 1 << 20} {
		if got := p.Interval(a); got != p.Max {
			t.Fatalf("Interval(%d) = %v, want Max %v", a, got, p.Max)
		}
	}
	// Attempt numbers at or below 1 all mean "first attempt".
	for _, a := range []int{-5, 0, 1} {
		if got := p.Interval(a); got != p.Base {
			t.Fatalf("Interval(%d) = %v, want Base %v", a, got, p.Base)
		}
	}
}

// TestPolicyNormalization pins the zero-value guards: a zero Base gets a
// sane default, and Max below Base is raised to Base.
func TestPolicyNormalization(t *testing.T) {
	p := Policy{}.normalized()
	if p.Base <= 0 || p.Max < p.Base {
		t.Fatalf("normalized zero policy = %+v, want positive Base <= Max", p)
	}
	p = Policy{Base: 50 * time.Millisecond, Max: time.Millisecond}.normalized()
	if p.Max != p.Base {
		t.Fatalf("Max below Base normalized to %v, want %v", p.Max, p.Base)
	}
}

// TestJitterBounds is the property test for the random half: every draw
// lies in [d/2, d], the draws vary, and both halves of the range are
// actually reachable (the distribution is not collapsed onto an edge).
func TestJitterBounds(t *testing.T) {
	s := New(Policy{Base: time.Millisecond, Max: time.Second}, 42)
	const d = 80 * time.Millisecond
	lowHalf, highHalf := 0, 0
	var first time.Duration
	distinct := false
	for i := 0; i < 5000; i++ {
		j := s.Jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("Jitter(%v) draw %d = %v, want within [%v, %v]", d, i, j, d/2, d)
		}
		if j < d/2+d/4 {
			lowHalf++
		} else {
			highHalf++
		}
		if i == 0 {
			first = j
		} else if j != first {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("jitter returned the same interval 5000 times; peers would synchronize")
	}
	// Uniform over [d/2, d]: each half of the range should see roughly
	// half the draws. A 35% floor is far outside what a uniform draw can
	// miss over 5000 samples but catches an off-by-one collapsing the
	// range.
	if lowHalf < 1750 || highHalf < 1750 {
		t.Fatalf("jitter distribution skewed: %d draws in [d/2, 3d/4), %d in [3d/4, d]", lowHalf, highHalf)
	}
	if s.Jitter(0) != 0 || s.Jitter(-time.Second) != 0 {
		t.Fatal("non-positive intervals must jitter to 0")
	}
}

// TestSeedDeterminism pins reproducibility: the same seed replays the
// same schedule, a different seed diverges.
func TestSeedDeterminism(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond}
	a, b, c := New(p, 7), New(p, 7), New(p, 8)
	same := true
	for attempt := 1; attempt <= 64; attempt++ {
		av, bv, cv := a.Next(attempt), b.Next(attempt), c.Next(attempt)
		if av != bv {
			t.Fatalf("attempt %d: same seed drew %v and %v", attempt, av, bv)
		}
		if av != cv {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw schedules")
	}
}

// TestNextHonorsSchedule ties the two halves together: every jittered
// draw for attempt n lies in [Interval(n)/2, Interval(n)].
func TestNextHonorsSchedule(t *testing.T) {
	p := Policy{Base: 4 * time.Millisecond, Max: 64 * time.Millisecond}
	s := New(p, 3)
	for attempt := 1; attempt <= 20; attempt++ {
		d := p.Interval(attempt)
		for i := 0; i < 100; i++ {
			if j := s.Next(attempt); j < d/2 || j > d {
				t.Fatalf("Next(%d) = %v, want within [%v, %v]", attempt, j, d/2, d)
			}
		}
	}
}

// TestSleepCancel pins the ctx contract: a canceled context cuts the
// sleep short with its error, and a live one sleeps through.
func TestSleepCancel(t *testing.T) {
	s := New(Policy{Base: time.Hour, Max: time.Hour}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Sleep(ctx, 1); err != context.Canceled {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	fast := New(Policy{Base: time.Microsecond, Max: time.Microsecond}, 1)
	if err := fast.Sleep(context.Background(), 1); err != nil {
		t.Fatalf("Sleep = %v, want nil", err)
	}
}
