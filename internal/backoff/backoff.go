// Package backoff is the repo's single implementation of jittered
// exponential backoff. Three subsystems grew identical copies of the
// same shape — the engine's breaker probes, the wire client's retry
// sleeps, and the shard router's moved-op re-dispatches — and all three
// now draw from here:
//
//	d = min(base << (attempt-1), max), drawn uniformly from [d/2, d]
//
// The full-period half-jitter is deliberate: a fleet of peers backing
// off from the same event (a tripped breaker, a shed burst, a cutover
// waking hundreds of parked writers) must not re-arrive in lockstep,
// but every draw still honors the schedule's order of magnitude so
// tests can bound it.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy is the deterministic half of a backoff schedule: the base
// interval and the doubling cap.
type Policy struct {
	// Base is the interval for attempt 1 (required, > 0).
	Base time.Duration
	// Max caps the doubling; intervals never exceed it (values below
	// Base are raised to Base).
	Max time.Duration
}

func (p Policy) normalized() Policy {
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	return p
}

// Interval returns the un-jittered interval for the given 1-based
// attempt number: min(Base<<(attempt-1), Max), with shift overflow
// clamped to Max.
func (p Policy) Interval(attempt int) time.Duration {
	p = p.normalized()
	if attempt <= 1 {
		return p.Base
	}
	// A shift past 62 bits (or one that wrapped negative) has certainly
	// blown past any sane cap.
	shift := attempt - 1
	if shift >= 63 {
		return p.Max
	}
	d := p.Base << shift
	if d <= 0 || d > p.Max {
		return p.Max
	}
	return d
}

// Source is a Policy plus a seeded jitter stream. A Source is safe for
// concurrent use; with the same seed it reproduces the same draw
// sequence, which is what keeps the seeded chaos sweeps deterministic.
type Source struct {
	p  Policy
	mu sync.Mutex
	rw *rand.Rand
}

// New builds a Source over the policy. Seed 0 is replaced by 1 so the
// zero value of a config still jitters deterministically.
func New(p Policy, seed int64) *Source {
	if seed == 0 {
		seed = 1
	}
	return &Source{p: p.normalized(), rw: rand.New(rand.NewSource(seed))}
}

// Policy returns the normalized policy the source draws from.
func (s *Source) Policy() Policy { return s.p }

// Jitter draws uniformly from [d/2, d]. Non-positive d returns 0.
func (s *Source) Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	half := d / 2
	s.mu.Lock()
	j := half + time.Duration(s.rw.Int63n(int64(half)+1))
	s.mu.Unlock()
	return j
}

// Next returns the jittered interval for the given 1-based attempt:
// Jitter(Interval(attempt)).
func (s *Source) Next(attempt int) time.Duration {
	return s.Jitter(s.p.Interval(attempt))
}

// Sleep blocks for Next(attempt) or until ctx ends, returning ctx's
// error if the wait was cut short.
func (s *Source) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(s.Next(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
