module costperf

go 1.22
