// Benchmarks regenerating every figure and derived result of the paper's
// evaluation (see DESIGN.md's per-experiment index). Model-only figures
// are cheap; "measured" benches run the corresponding experiment on the
// simulated substrate and report its headline quantities via
// b.ReportMetric, so `go test -bench .` prints the paper-vs-measured
// numbers EXPERIMENTS.md records.
package costperf

import (
	"testing"

	"costperf/internal/core"
	"costperf/internal/experiments"
	"costperf/internal/llama"
	"costperf/internal/ssd"
)

// --- Figures (cost model) --------------------------------------------------

func BenchmarkFigure1Model(b *testing.B) {
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure1(5.8, 101)
	}
	last := fig.Series[1].Points[len(fig.Series[1].Points)-1]
	b.ReportMetric(last.Y, "relperf@F=1")
}

func BenchmarkFigure2(b *testing.B) {
	costs := core.PaperCosts()
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure2(costs, 201)
	}
	if x, ok := core.Crossover(fig.Series[0], fig.Series[1]); ok {
		b.ReportMetric(1/x, "T_i_secs")
	}
}

func BenchmarkFigure3(b *testing.B) {
	cmp := core.PaperComparison()
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure3(cmp, 6.1e9, 201)
	}
	if x, ok := core.Crossover(fig.Series[0], fig.Series[1]); ok {
		b.ReportMetric(x, "breakeven_ops_per_sec")
	}
}

func BenchmarkFigure7(b *testing.B) {
	costs := core.PaperCosts()
	for i := 0; i < b.N; i++ {
		core.Figure7(costs, []float64{9, 5.8}, 201)
	}
	b.ReportMetric(costs.WithR(9).BreakevenInterval(), "T_i_kernel_secs")
	b.ReportMetric(costs.BreakevenInterval(), "T_i_spdk_secs")
}

func BenchmarkFigure8(b *testing.B) {
	costs := core.PaperCosts()
	css := core.DefaultCSS()
	for i := 0; i < b.N; i++ {
		core.Figure8(costs, css, 201)
	}
	b.ReportMetric(costs.CSSSSBreakevenRate(css), "css_ss_crossover_ops")
	b.ReportMetric(costs.BreakevenRate(), "ss_mm_crossover_ops")
}

// --- Figure 1 measured points / D1 ------------------------------------------

func BenchmarkDeriveR(b *testing.B) {
	var res *experiments.RResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.DeriveR(20000, []float64{0.05, 0.2, 0.4}, ssd.UserLevelPath)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanR, "R_measured")
}

func BenchmarkDeriveRKernelPath(b *testing.B) {
	var res *experiments.RResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.DeriveR(20000, []float64{0.2}, ssd.KernelPath)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanR, "R_kernel")
}

// --- D2: the updated five-minute rule ---------------------------------------

func BenchmarkFiveMinuteRule(b *testing.B) {
	costs := core.PaperCosts()
	var ti float64
	for i := 0; i < b.N; i++ {
		ti = costs.BreakevenInterval()
	}
	b.ReportMetric(ti, "T_i_secs")
	b.ReportMetric(costs.BreakevenIntervalForSize(costs.PageSize/10), "record_T_i_secs")
}

// --- D3: MassTree vs Bw-tree ------------------------------------------------

func BenchmarkMxPx(b *testing.B) {
	var res *experiments.MxPxResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureMxPx(20000, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mx, "Mx")
	b.ReportMetric(res.Px, "Px")
}

// --- D4: page-size model ------------------------------------------------------

func BenchmarkPageUtilization(b *testing.B) {
	var res *experiments.PageModelResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasurePageModel(15000, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BTreeUtilization, "btree_util")
	b.ReportMetric(res.BwStorageUtilization, "bwtree_storage_util")
	b.ReportMetric(res.BTreeAvgPageBytes, "Ps_bytes")
}

// --- D5: write reduction ------------------------------------------------------

func BenchmarkWriteReduction(b *testing.B) {
	var res *experiments.WriteReductionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureWriteReduction(4000, 4000, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WriteIOReduction, "write_io_reduction_x")
	b.ReportMetric(res.WriteByteReduction, "write_byte_reduction_x")
}

// --- D6: blind updates --------------------------------------------------------

func BenchmarkBlindUpdates(b *testing.B) {
	var res *experiments.BlindUpdateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureBlindUpdates(3000, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ReadIOsBlind), "blind_read_ios")
	b.ReportMetric(float64(res.ReadIOsReadModify), "rmw_read_ios")
}

// --- D7: TC record caching -----------------------------------------------------

func BenchmarkRecordCache(b *testing.B) {
	var res *experiments.RecordCacheResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureRecordCache(4000, 1500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TCHitRatio, "tc_hit_ratio")
	b.ReportMetric(float64(res.DeviceReads), "device_reads")
}

// --- D8: log GC trade-off -------------------------------------------------------

func BenchmarkLogGC(b *testing.B) {
	var res *experiments.GCTradeoffResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureGCTradeoff(2500, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EagerPerRun, "eager_bytes_per_run")
	b.ReportMetric(res.DelayedPerRun, "delayed_bytes_per_run")
}

// --- A1: eviction policy ---------------------------------------------------------

func BenchmarkEvictionPolicy(b *testing.B) {
	var res *experiments.EvictionAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureEvictionPolicies(15000, 2500)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, o := range res.Outcomes {
		switch o.Policy {
		case llama.PolicyBreakeven:
			b.ReportMetric(o.MissFraction, "breakeven_missF")
			b.ReportMetric(o.FootprintMB, "breakeven_footprint_MB")
		case llama.PolicyNone:
			b.ReportMetric(o.FootprintMB, "none_footprint_MB")
		}
	}
}

// --- A2: consolidation threshold ---------------------------------------------------

func BenchmarkConsolidationThreshold(b *testing.B) {
	var res *experiments.ConsolidationAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureConsolidationThreshold(4000, 8000, []int{2, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].MeanReadCost, "read_cost_th2")
	b.ReportMetric(res.Points[2].MeanReadCost, "read_cost_th32")
}

// --- A3: device sweep ------------------------------------------------------------

func BenchmarkDeviceSweep(b *testing.B) {
	var res *experiments.DeviceSweep
	for i := 0; i < b.N; i++ {
		res = experiments.MeasureDeviceSweep()
	}
	for _, p := range res.Points {
		if p.Name == "samsung-ssd" {
			b.ReportMetric(p.BreakevenSecs, "ssd_T_i_secs")
		}
		if p.Name == "commodity-hdd" {
			b.ReportMetric(p.BreakevenSecs, "hdd_T_i_secs")
		}
	}
}

// --- Wall-clock engine benchmarks (cross-check; absolute numbers are Go-
// runtime specific and NOT the paper's quantities — see DESIGN.md on GC
// noise) -----------------------------------------------------------------

func BenchmarkWallClockDeuteronomyGetWarm(b *testing.B) {
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const keys = 100000
	for i := uint64(0); i < keys; i++ {
		if err := d.Put(Key(i), ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Get(Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWallClockDeuteronomyPut(b *testing.B) {
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	val := ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWallClockMassTreeGet(b *testing.B) {
	mt := NewMassTree(nil)
	const keys = 100000
	for i := uint64(0); i < keys; i++ {
		mt.Put(Key(i), ValueFor(i, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Get(Key(uint64(i) % keys))
	}
}

func BenchmarkWallClockMassTreePut(b *testing.B) {
	mt := NewMassTree(nil)
	val := ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Put(Key(uint64(i)), val)
	}
}

func BenchmarkWallClockLSMPut(b *testing.B) {
	l, err := NewLSM(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	val := ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Put(Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWallClockSSOperation(b *testing.B) {
	// One cold read per iteration: evict the page again after reading.
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const keys = 20000
	for i := uint64(0); i < keys; i++ {
		if err := d.Put(Key(i), ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	pids := d.Tree.Pages()
	for _, pid := range pids {
		if err := d.Tree.EvictPage(pid, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key(uint64(i*61) % keys)
		if _, _, err := d.Get(k); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		pid := pids[i%len(pids)]
		if d.Tree.PageResident(pid) {
			if err := d.Tree.EvictPage(pid, false); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}

// --- D9: latency distribution ----------------------------------------------

func BenchmarkLatencyDistribution(b *testing.B) {
	var res *experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureLatency(15000, 3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.P50US, "p50_us")
	b.ReportMetric(res.P99US, "p99_us")
}

// --- LSM amplification (Section 6.1 / RocksDB space-amp reference) ----------

func BenchmarkLSMAmplification(b *testing.B) {
	var res *experiments.LSMAmplificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureLSMAmplification(3000, 6000, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WriteAmplification, "write_amp_x")
	b.ReportMetric(res.SpaceAmplification, "space_amp_x")
}

// --- Sensitivity of the five-minute rule -------------------------------------

func BenchmarkBreakevenSensitivities(b *testing.B) {
	costs := core.PaperCosts()
	var s map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		s, err = costs.BreakevenSensitivities()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s[core.ParamIOPSCost], "elasticity_iops_cost")
	b.ReportMetric(s[core.ParamR], "elasticity_R")
}

// --- Cross-store table --------------------------------------------------------

func BenchmarkCrossStore(b *testing.B) {
	var res *experiments.CrossStoreResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasureCrossStore(3000, 3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Results {
		if s.Mix == "readonly" && (s.Store == "masstree" || s.Store == "bwtree") {
			b.ReportMetric(s.CostPerOp, s.Store+"_cost_per_op")
		}
	}
}
