// Package costperf is a from-scratch reproduction of David Lomet,
// "Cost/Performance in Modern Data Stores: How Data Caching Systems
// Succeed" (DaMoN'18 / ICDE'19).
//
// It provides:
//
//   - The paper's cost/performance model (Equations 1–8): mixed MM/SS
//     workload throughput, the updated five-minute rule, the Bw-tree vs
//     MassTree comparison, and compressed-storage (CSS) extensions. See
//     Costs, MainMemoryComparison, CSSParams and the Figure* generators.
//
//   - The systems the analysis is about, implemented from scratch:
//     a latch-free Bw-tree over LLAMA (mapping table + log-structured
//     store) on a simulated flash SSD (Deuteronomy's data component), a
//     MassTree, a classic buffer-pool B-tree, an LSM tree (the RocksDB
//     stand-in), and a Deuteronomy-style transaction component with MVCC,
//     a recovery-log record cache, and a read cache.
//
//   - Deterministic execution-cost accounting (Session/Tracker) that
//     measures the paper's quantities — R, P0/PF, M_x, P_x — without Go
//     garbage-collector noise.
//
// Quick start:
//
//	d, _ := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
//	_ = d.Put([]byte("k"), []byte("v"))
//	v, ok, _ := d.Get([]byte("k"))
//	_ = v
//	_ = ok
//	fmt.Println(costperf.PaperCosts().BreakevenInterval()) // ≈ 45 s
//
// The cmd/figures binary regenerates every figure of the paper's
// evaluation; cmd/experiments runs the measured experiments; EXPERIMENTS.md
// records paper-vs-measured results.
package costperf
