#!/bin/sh
# check.sh — the repo's full verification pass: vet, build, the complete
# test suite, and a race-enabled run of the concurrency-sensitive storage
# packages (the ones the fault-injection, crash-recovery, and engine
# front-end work hardens).
#
# Set CHECK_SHORT=1 for the CI-friendly variant: identical coverage, but
# the seeded chaos/crash matrices run their -short subset of seeds.
#
# Set CHECK_RACE=1 to run the entire module under the race detector (with
# -short workloads) instead of the targeted storage-stack list — broader
# coverage (obs, workload, experiments, the differential suite) at several
# times the runtime.
#
# Set CHECK_SCRUB=1 for the long scrub-soak pass: a mirrored device under
# sustained traffic with latent bit flips, verifying the background
# scrubber's token-bucket I/O budget and repair convergence over several
# wall-clock seconds (skipped otherwise).
#
# Set CHECK_FAILOVER=1 for the full 100-seed warm-standby failover soak
# under the race detector: lossy/partitioned ship links, mid-ship primary
# crashes, forced promotions, and PITR verification against a MassTree
# oracle, with a hard watchdog timeout so a wedged drain fails the run
# instead of hanging it.
#
# Set CHECK_SHARD=1 for the full 100-seed shard-migration soak under the
# race detector: a live shard migration per seed with concurrent writers
# on the moving shard, a lossy and periodically partitioned migration
# link, and an injected crash at every phase boundary of the cutover
# state machine, asserting zero lost acked writes, exactly-once
# application against an acked-state oracle, and fenced stale owners —
# with a hard watchdog timeout.
#
# Set CHECK_WIRE=1 for the full 50-seed network chaos sweep under the race
# detector: wire clients and server over real connections through
# fault.Conn (drops, dups, reorders, half-closes, stalls, a mid-run
# partition-driven retry storm), asserting exactly-once retried writes,
# zero lost acked writes, bounded retry amplification, graceful drain, and
# no leaked goroutines — again with a hard watchdog.
set -eux

SHORT=""
if [ -n "${CHECK_SHORT:-}" ]; then
    SHORT="-short"
fi

go vet ./...
go build ./...
go test $SHORT ./...
if [ -n "${CHECK_RACE:-}" ]; then
    go test -race -short ./...
else
    go test $SHORT -race \
        ./internal/bwtree \
        ./internal/llama/... \
        ./internal/tc \
        ./internal/ssd \
        ./internal/fault \
        ./internal/lsm \
        ./internal/metrics \
        ./internal/engine \
        ./internal/repl \
        ./internal/wire/... \
        ./internal/integration
fi
if [ -n "${CHECK_SCRUB:-}" ]; then
    CHECK_SCRUB=1 go test -run 'TestScrubSoakLong|TestMirror' -count=1 -timeout 10m \
        ./internal/ssd \
        ./internal/integration
fi
if [ -n "${CHECK_FAILOVER:-}" ]; then
    go test -race -run 'TestFailoverChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -failover.full=true
fi
if [ -n "${CHECK_SHARD:-}" ]; then
    go test -race -run 'TestShardMigrationChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -shard.full=true
fi
if [ -n "${CHECK_WIRE:-}" ]; then
    go test -race -run 'TestWireChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -wire.full=true
fi
