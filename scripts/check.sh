#!/bin/sh
# check.sh — the repo's full verification pass: vet, build, the complete
# test suite, and a race-enabled run of the concurrency-sensitive storage
# packages (the ones the fault-injection, crash-recovery, and engine
# front-end work hardens).
#
# Set CHECK_SHORT=1 for the CI-friendly variant: identical coverage, but
# the seeded chaos/crash matrices run their -short subset of seeds.
set -eux

SHORT=""
if [ -n "${CHECK_SHORT:-}" ]; then
    SHORT="-short"
fi

go vet ./...
go build ./...
go test $SHORT ./...
go test $SHORT -race \
    ./internal/bwtree \
    ./internal/llama/... \
    ./internal/tc \
    ./internal/ssd \
    ./internal/fault \
    ./internal/lsm \
    ./internal/metrics \
    ./internal/engine \
    ./internal/integration
