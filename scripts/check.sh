#!/bin/sh
# check.sh — the repo's full verification pass: vet, build, the complete
# test suite, and a race-enabled run of the concurrency-sensitive storage
# packages (the ones the fault-injection and crash-recovery work hardens).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race \
    ./internal/bwtree \
    ./internal/llama/... \
    ./internal/tc \
    ./internal/ssd \
    ./internal/fault \
    ./internal/lsm \
    ./internal/integration
