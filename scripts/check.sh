#!/bin/sh
# check.sh — the repo's full verification pass: vet, build, the complete
# test suite, and a race-enabled run of the concurrency-sensitive storage
# packages (the ones the fault-injection, crash-recovery, and engine
# front-end work hardens).
#
# Set CHECK_SHORT=1 for the CI-friendly variant: identical coverage, but
# the seeded chaos/crash matrices run their -short subset of seeds.
#
# Set CHECK_RACE=1 to run the entire module under the race detector (with
# -short workloads) instead of the targeted storage-stack list — broader
# coverage (obs, workload, experiments, the differential suite) at several
# times the runtime.
#
# Set CHECK_SCRUB=1 for the long scrub-soak pass: a mirrored device under
# sustained traffic with latent bit flips, verifying the background
# scrubber's token-bucket I/O budget and repair convergence over several
# wall-clock seconds (skipped otherwise).
#
# Set CHECK_FAILOVER=1 for the full 100-seed warm-standby failover soak
# under the race detector: lossy/partitioned ship links, mid-ship primary
# crashes, forced promotions, and PITR verification against a MassTree
# oracle, with a hard watchdog timeout so a wedged drain fails the run
# instead of hanging it.
#
# Set CHECK_SHARD=1 for the full 100-seed shard-migration soak under the
# race detector: a live shard migration per seed with concurrent writers
# on the moving shard, a lossy and periodically partitioned migration
# link, and an injected crash at every phase boundary of the cutover
# state machine, asserting zero lost acked writes, exactly-once
# application against an acked-state oracle, and fenced stale owners —
# with a hard watchdog timeout.
#
# Set CHECK_RESIZE=1 for the full 100-seed elastic-resize soak under the
# race detector: every seed splits a shard and merges the children back
# while concurrent writers hit the resizing range over a lossy,
# periodically partitioned stream link, with an injected crash at every
# phase boundary of the split and merge state machines, asserting zero
# lost acked writes, a byte-identical final state against the acked-state
# oracle, fenced stale owners (split source and both merge sources), and
# bounded key movement (a hash moves owner iff it lies in the split
# range) — with a hard watchdog timeout.
#
# Set CHECK_WIRE=1 for the full 50-seed network chaos sweep under the race
# detector: wire clients and server over real connections through
# fault.Conn (drops, dups, reorders, half-closes, stalls, a mid-run
# partition-driven retry storm), asserting exactly-once retried writes,
# zero lost acked writes, bounded retry amplification, graceful drain, and
# no leaked goroutines — again with a hard watchdog.
#
# Set CHECK_OVERLOAD=1 for the full 50-seed metastable-failure chaos
# sweep under the race detector: a capacity-limited store behind the
# engine's adaptive concurrency limiter and the wire server, hit with a
# flash-crowd storm (6x the steady client fleet plus a request-path
# partition blip). Each seed asserts the adaptive stack re-converges to
# >=90% of pre-storm goodput the moment the storm stops, keeps the
# high-priority class served through the storm (brownout ladder sheds
# scans and low first), loses zero acked writes, and actually delivered
# retry-after hints to clients — then reruns the identical harness with
# the limiter disabled and requires it to demonstrably fail to
# re-converge in the same window, proving the mechanism and not the test.
#
# Set CHECK_MATRIX=1 for the perf-trajectory gate: run the full scenario
# matrix (kvbench -matrix all) at a CI-sized workload, then hold benchdiff
# to its exit-code contract — the identity diff must pass, an injected
# 50% regression must fail, and a -report-only diff against the committed
# BENCH_matrix.json must prove the scenario coverage never shrinks
# (absolute numbers across machines are advisory; coverage is not).
set -eux

SHORT=""
if [ -n "${CHECK_SHORT:-}" ]; then
    SHORT="-short"
fi

go vet ./...
go build ./...
go test $SHORT ./...
if [ -n "${CHECK_RACE:-}" ]; then
    go test -race -short ./...
else
    go test $SHORT -race \
        ./internal/bwtree \
        ./internal/llama/... \
        ./internal/tc \
        ./internal/ssd \
        ./internal/fault \
        ./internal/lsm \
        ./internal/metrics \
        ./internal/backoff \
        ./internal/overload \
        ./internal/engine \
        ./internal/repl \
        ./internal/shard \
        ./internal/wire/... \
        ./internal/integration
fi
if [ -n "${CHECK_SCRUB:-}" ]; then
    CHECK_SCRUB=1 go test -run 'TestScrubSoakLong|TestMirror' -count=1 -timeout 10m \
        ./internal/ssd \
        ./internal/integration
fi
if [ -n "${CHECK_FAILOVER:-}" ]; then
    go test -race -run 'TestFailoverChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -failover.full=true
fi
if [ -n "${CHECK_SHARD:-}" ]; then
    go test -race -run 'TestShardMigrationChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -shard.full=true
fi
if [ -n "${CHECK_RESIZE:-}" ]; then
    go test -race -run 'TestShardResizeChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -resize.full=true
fi
if [ -n "${CHECK_WIRE:-}" ]; then
    go test -race -run 'TestWireChaosSweep' -count=1 -timeout 15m \
        ./internal/integration -wire.full=true
fi
if [ -n "${CHECK_OVERLOAD:-}" ]; then
    go test -race -run 'TestOverloadChaosSweep' -count=1 -timeout 20m \
        ./internal/integration -overload.full=true
fi
if [ -n "${CHECK_MATRIX:-}" ]; then
    go build -o /tmp/kvbench ./cmd/kvbench
    go build -o /tmp/benchdiff ./cmd/benchdiff
    /tmp/kvbench -matrix all -matrix-stores masstree,lsm -matrix-conc 8 \
        -keys 5000 -ops 8000 -bench-out /tmp/BENCH_matrix.ci.json
    # Identity diff must pass (exit 0)...
    /tmp/benchdiff /tmp/BENCH_matrix.ci.json /tmp/BENCH_matrix.ci.json
    # ...and an injected regression must fail (exit 1), proving the gate bites.
    if /tmp/benchdiff -inject-regression 0.5 \
        /tmp/BENCH_matrix.ci.json /tmp/BENCH_matrix.ci.json; then
        echo "CHECK_MATRIX: injected regression was not caught" >&2
        exit 1
    fi
    # Committed trajectory: metric deltas across machines are advisory
    # (-report-only), but every committed scenario cell must still exist.
    /tmp/benchdiff -report-only BENCH_matrix.json /tmp/BENCH_matrix.ci.json
fi
