// hotcold: run a skewed workload against the data caching stack and watch
// the five-minute-rule eviction policy track the hot set — hot pages stay
// in DRAM, cold pages migrate to flash, exactly the adaptivity the paper
// credits data caching systems with (Sections 3–4).
package main

import (
	"fmt"
	"log"

	"costperf"
)

func main() {
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{
		BreakevenSeconds: 45, // the paper's T_i
	})
	if err != nil {
		log.Fatal(err)
	}

	const keys = 50000
	fmt.Printf("loading %d keys...\n", keys)
	for i := uint64(0); i < keys; i++ {
		if err := d.Put(costperf.Key(i), costperf.ValueFor(i, 100)); err != nil {
			log.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resident footprint after load: %.1f MB\n\n",
		float64(d.Tree.FootprintBytes())/1e6)

	// 90% of accesses hit 10% of keys; virtual time advances so cold pages
	// age past T_i between touches.
	hot := costperf.NewHotColdChooser(1, 0.10, 0.90)
	clock := d.Session.Clock()
	const phases = 6
	const opsPerPhase = 5000
	for phase := 1; phase <= phases; phase++ {
		for i := 0; i < opsPerPhase; i++ {
			id := hot.Next(keys)
			if _, _, err := d.Get(costperf.Key(id)); err != nil {
				log.Fatal(err)
			}
			clock.Advance(60.0 / opsPerPhase) // one virtual minute per phase
		}
		evicted, err := d.Sweep()
		if err != nil {
			log.Fatal(err)
		}
		resident := 0
		for _, pid := range d.Tree.Pages() {
			if d.Tree.PageResident(pid) {
				resident++
			}
		}
		tk := d.Session.Tracker()
		fmt.Printf("phase %d: evicted %4d pages, %4d/%d resident, footprint %6.1f MB, miss ratio %.4f\n",
			phase, evicted, resident, len(d.Tree.Pages()),
			float64(d.Tree.FootprintBytes())/1e6, tk.MissFraction())
	}

	tk := d.Session.Tracker()
	fmt.Printf("\nfinal accounting: %s\n", tk.String())
	fmt.Printf("The hot 10%% stayed cached; the cold 90%% pays an SS operation only\n")
	fmt.Printf("on its rare touches — the cost-optimal point of Figure 2.\n")
	if r := tk.R(); r > 0 {
		fmt.Printf("measured R on this run: %.2f (paper: 5.8 +/- 30%%)\n", r)
	}
}
