// Quickstart: assemble the Deuteronomy-style data caching stack (Bw-tree
// over LLAMA over a simulated flash SSD), store and read data, and print
// the cost-model quantities the paper derives.
package main

import (
	"fmt"
	"log"

	"costperf"
)

func main() {
	// The zero options give a paper-like setup: Samsung-class simulated
	// SSD, 4K max pages, breakeven (five-minute rule) eviction at T_i≈45s.
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Write and read some records.
	for i := uint64(0); i < 10000; i++ {
		if err := d.Put(costperf.Key(i), costperf.ValueFor(i, 100)); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := d.Get(costperf.Key(42))
	if err != nil || !ok {
		log.Fatalf("get: ok=%v err=%v", ok, err)
	}
	fmt.Printf("key 42 -> %d bytes\n", len(v))

	// Range scan.
	fmt.Print("first five keys: ")
	_ = d.Scan(nil, 5, func(k, _ []byte) bool {
		fmt.Printf("%d ", binaryKey(k))
		return true
	})
	fmt.Println()

	// A blind update needs no page read even when the page is evicted
	// (paper Section 6.2).
	if err := d.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	for _, pid := range d.Tree.Pages() {
		if err := d.Tree.EvictPage(pid, false); err != nil {
			log.Fatal(err)
		}
	}
	readsBefore := d.Device.Stats().Reads.Value()
	if err := d.BlindPut(costperf.Key(42), []byte("updated blindly")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blind update read I/Os: %d (always 0)\n",
		d.Device.Stats().Reads.Value()-readsBefore)

	// The paper's headline numbers from the cost model.
	costs := costperf.PaperCosts()
	fmt.Printf("\ncost model (paper Section 4):\n")
	fmt.Printf("  five-minute rule T_i:        %.1f s (paper: ~45 s)\n", costs.BreakevenInterval())
	fmt.Printf("  MM/SS storage cost ratio:    %.1fx (paper: ~11x)\n", costs.StorageCostRatio())
	fmt.Printf("  SS/MM execution cost ratio:  %.1fx (paper: ~12x)\n", costs.ExecCostRatio())

	cmp := costperf.PaperComparison()
	fmt.Printf("  MassTree breakeven @6.1GB:   %.3g ops/s (paper: ~0.73e6)\n",
		cmp.BreakevenRate(6.1e9))

	// What this run actually measured.
	tk := d.Session.Tracker()
	fmt.Printf("\nthis run: %s\n", tk.String())
	fmt.Printf("device:   %s\n", d.Device.Stats().String())
}

func binaryKey(k []byte) uint64 {
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return v
}
