// compression: the Section 7.2 three-regime demonstration — very cold data
// is cheapest compressed on flash (CSS), warm data uncompressed on flash
// (SS), hot data in DRAM (MM). The demo measures a real compression ratio
// on real pages and feeds it into the cost model.
package main

import (
	"fmt"
	"log"

	"costperf"
	"costperf/internal/compress"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

func main() {
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	ps, err := compress.NewPageStore(dev, sess, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Store a few hundred "pages" of plausible row data.
	const pages = 200
	for i := uint64(0); i < pages; i++ {
		page := buildPage(i)
		if err := ps.WritePage(i, page); err != nil {
			log.Fatal(err)
		}
	}
	ratio := ps.Stats().Ratio()
	fmt.Printf("stored %d pages, measured compression ratio %.2f (compressed/uncompressed)\n",
		pages, ratio)

	// Read a few back: CSS operations (I/O + decompress CPU).
	for i := uint64(0); i < 10; i++ {
		if _, err := ps.ReadPage(i); err != nil {
			log.Fatal(err)
		}
	}
	tk := sess.Tracker()
	fmt.Printf("CSS op cost: %.0f units vs plain SS I/O issue %.0f units\n\n",
		float64(tk.MeanCost(sim.OpCSS)),
		float64(sess.Profile().IOIssueUser+sess.Profile().ContextSwitch))

	// Feed the measured ratio into the Figure 8 model.
	costs := costperf.PaperCosts()
	css := costperf.CSSParams{CompressionRatio: ratio, DecompressOverhead: 3}
	if err := css.Validate(); err != nil {
		log.Fatal(err)
	}
	lo := costs.CSSSSBreakevenRate(css)
	hi := costs.BreakevenRate()
	fmt.Println("three cost regimes (Figure 8), with the measured ratio:")
	fmt.Printf("  below %.4g accesses/s: store compressed (CSS)\n", lo)
	fmt.Printf("  %.4g to %.4g accesses/s: uncompressed flash (SS)\n", lo, hi)
	fmt.Printf("  above %.4g accesses/s: cache in DRAM (MM)\n\n", hi)

	fmt.Printf("%14s %12s %12s %12s %8s\n", "accesses/sec", "$CSS", "$SS", "$MM", "pick")
	for _, mult := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		n := hi * mult
		fmt.Printf("%14.5g %12.4g %12.4g %12.4g %8s\n",
			n, costs.CSSCostPerSec(n, css), costs.SSCostPerSec(n), costs.MMCostPerSec(n),
			costs.CheapestOperation(n, css))
	}
	fmt.Println("\nEven modest unit-cost differences matter: most data is cold, so the")
	fmt.Println("CSS regime can cover the bulk of a big store's bytes (Section 7.2).")
}

// buildPage fabricates a page of repetitive row-like content.
func buildPage(id uint64) []byte {
	var page []byte
	for row := 0; row < 40; row++ {
		page = append(page, []byte(fmt.Sprintf(
			"row=%06d|user=user-%04d|status=active|balance=%08d|notes=lorem ipsum dolor sit amet;",
			id*40+uint64(row), row%100, row*17))...)
	}
	return page
}
