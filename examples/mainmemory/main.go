// mainmemory: the Section 5 comparison on your machine — load identical
// data into the fully cached Bw-tree and a MassTree, measure M_x (memory
// expansion) and P_x (performance gain), and evaluate Equation 7's
// breakeven between the two systems.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"costperf"
	"costperf/internal/experiments"
)

func main() {
	keys := flag.Uint64("keys", 100000, "keys to load")
	value := flag.Int("value", 64, "value size bytes")
	flag.Parse()

	fmt.Printf("loading %d keys into Bw-tree (main-memory mode) and MassTree...\n", *keys)
	res, err := experiments.MeasureMxPx(*keys, *value)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	// Evaluate the comparison at several database sizes (Section 5.2).
	cmp := costperf.MainMemoryComparison{Costs: costperf.PaperCosts(), Mx: res.Mx, Px: res.Px}
	if err := cmp.Validate(); err != nil {
		fmt.Println("\nmeasured point outside the paper's regime:", err)
		return
	}
	fmt.Println("\nEquation 7 with the measured M_x/P_x:")
	fmt.Printf("  %10s %22s\n", "DB size", "MassTree wins above")
	for _, size := range []float64{1e9, 6.1e9, 100e9, 1e12} {
		fmt.Printf("  %10.3g %18.4g ops/s\n", size, cmp.BreakevenRate(size))
	}
	fmt.Println("\nThe breakeven rate scales linearly with database size: big databases")
	fmt.Println("need enormous aggregate access rates before an all-in-memory system")
	fmt.Println("is the cheaper choice — the paper's core market argument.")

	// Sanity: identical query answers from both stores.
	sess := costperf.NewSession(costperf.DefaultCostProfile())
	mt := costperf.NewMassTree(sess)
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{Session: sess})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		id := uint64(rng.Int63n(int64(*keys)))
		k, v := costperf.Key(id), costperf.ValueFor(id, *value)
		mt.Put(k, v)
		if err := d.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	mismatches := 0
	for i := 0; i < 500; i++ {
		id := uint64(rng.Int63n(int64(*keys)))
		k := costperf.Key(id)
		v1, ok1 := mt.Get(k)
		v2, ok2, err := d.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		if ok1 != ok2 || (ok1 && string(v1) != string(v2)) {
			mismatches++
		}
	}
	fmt.Printf("\ncross-check: %d mismatches across 500 random lookups\n", mismatches)
}
