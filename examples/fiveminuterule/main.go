// fiveminuterule: explore the paper's updated five-minute rule (Section 4)
// for your own hardware parameters, and see how the breakeven moves with
// SSD generation, I/O path, and record-level caching.
package main

import (
	"flag"
	"fmt"

	"costperf"
)

func main() {
	dramGB := flag.Float64("dram", 5, "DRAM price $/GB")
	flashGB := flag.Float64("flash", 0.5, "flash price $/GB")
	cpu := flag.Float64("cpu", 300, "processor price $")
	iopsCost := flag.Float64("iopscost", 50, "price of the SSD's IOPS capability $")
	iops := flag.Float64("iops", 2e5, "SSD IOPS")
	rops := flag.Float64("rops", 4e6, "main-memory ops/sec")
	pageKB := flag.Float64("page", 2.7, "average page size KB")
	r := flag.Float64("r", 5.8, "relative SS/MM execution cost R")
	flag.Parse()

	c := costperf.Costs{
		DRAMPerByte:  *dramGB / 1e9,
		FlashPerByte: *flashGB / 1e9,
		Processor:    *cpu,
		IOPSCost:     *iopsCost,
		IOPS:         *iops,
		ROPS:         *rops,
		PageSize:     *pageKB * 1e3,
		R:            *r,
	}
	if err := c.Validate(); err != nil {
		fmt.Println("invalid parameters:", err)
		return
	}

	ti := c.BreakevenInterval()
	fmt.Printf("your five-minute rule:\n")
	fmt.Printf("  breakeven interval T_i = %.1f s\n", ti)
	fmt.Printf("  => evict a page if it has not been touched for %.1f s; below\n", ti)
	fmt.Printf("     %.4f accesses/s, flash + SS operations are cheaper than DRAM\n\n", c.BreakevenRate())

	fmt.Println("sensitivity:")
	fmt.Printf("  %-38s T_i = %7.1f s\n", "as configured", ti)
	fmt.Printf("  %-38s T_i = %7.1f s\n", "kernel I/O path (R=9, Section 7.1.1)", c.WithR(9).BreakevenInterval())
	next := c.WithIOPS(c.IOPS*2.5, c.IOPSCost)
	fmt.Printf("  %-38s T_i = %7.1f s\n", "next-gen SSD (2.5x IOPS, Section 7.1.2)", next.BreakevenInterval())
	fmt.Printf("  %-38s T_i = %7.1f s\n", "record cache, 10 records/page (S 6.3)",
		c.BreakevenIntervalForSize(c.PageSize/10))

	fmt.Println("\ncost per second at selected access rates (relative units):")
	fmt.Printf("  %14s %14s %14s %10s\n", "accesses/sec", "$MM", "$SS", "cheaper")
	be := c.BreakevenRate()
	for _, mult := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 100} {
		n := be * mult
		mm, ss := c.MMCostPerSec(n), c.SSCostPerSec(n)
		who := "MM"
		if ss < mm {
			who = "SS"
		} else if ss == mm {
			who = "equal"
		}
		fmt.Printf("  %14.5g %14.5g %14.5g %10s\n", n, mm, ss, who)
	}

	fmt.Println("\ncompressed storage (Figure 8, illustrative parameters):")
	css := costperf.DefaultCSS()
	fmt.Printf("  CSS cheaper below %.5g accesses/s; MM cheaper above %.5g accesses/s\n",
		c.CSSSSBreakevenRate(css), be)
}
