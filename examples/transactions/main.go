// transactions: the full Deuteronomy stack — transaction component (MVCC +
// recovery-log record cache + read cache) over the Bw-tree data component —
// including a crash and recovery, and the Section 6.3 record-cache effect:
// most reads never reach the data component, let alone the device.
package main

import (
	"errors"
	"fmt"
	"log"

	"costperf"
	"costperf/internal/tc"
)

func main() {
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	logDev := costperf.NewDevice(costperf.SamsungSSD)
	txc, err := costperf.NewTransactional(d.Tree, logDev, d.Session)
	if err != nil {
		log.Fatal(err)
	}

	// A transfer workload over account records.
	const accounts = 1000
	setup, _ := txc.Begin()
	for i := uint64(0); i < accounts; i++ {
		if err := setup.Write(costperf.Key(i), []byte(fmt.Sprintf("balance=%d", 100))); err != nil {
			log.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}

	commits, conflicts := 0, 0
	for i := 0; i < 5000; i++ {
		tx, err := txc.Begin()
		if err != nil {
			log.Fatal(err)
		}
		from := costperf.Key(uint64(i) % accounts)
		to := costperf.Key(uint64(i*7) % accounts)
		if _, _, err := tx.Read(from); err != nil {
			log.Fatal(err)
		}
		if _, _, err := tx.Read(to); err != nil {
			log.Fatal(err)
		}
		tx.Write(from, []byte(fmt.Sprintf("balance=%d", 100-i%10)))
		tx.Write(to, []byte(fmt.Sprintf("balance=%d", 100+i%10)))
		switch err := tx.Commit(); {
		case err == nil:
			commits++
		case errors.Is(err, tc.ErrConflict):
			conflicts++
		default:
			log.Fatal(err)
		}
	}
	st := txc.Stats()
	total := st.VersionStoreHits.Value() + st.ReadCacheHits.Value() + st.DCReads.Value()
	fmt.Printf("ran 5000 transfer transactions: %d commits, %d conflicts\n", commits, conflicts)
	fmt.Printf("read path (Figure 6 cascade) over %d reads:\n", total)
	fmt.Printf("  MVCC version store (recovery-log record cache): %d\n", st.VersionStoreHits.Value())
	fmt.Printf("  log-structured read cache:                      %d\n", st.ReadCacheHits.Value())
	fmt.Printf("  data component (Bw-tree):                       %d\n", st.DCReads.Value())
	fmt.Printf("every cache hit avoids the DC lookup and any I/O (Section 6.3)\n\n")

	// Transactional range scans merge own writes, snapshot-visible
	// versions, and the data component (the Figure 6 cascade generalized).
	scanTx, _ := txc.Begin()
	scanTx.Write(costperf.Key(2), []byte("balance=999 (uncommitted)"))
	fmt.Println("snapshot scan of the first accounts (with one own uncommitted write):")
	if err := scanTx.Scan(costperf.Key(0), 4, func(k, v []byte) bool {
		fmt.Printf("  account %d -> %s\n", k[7], v)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	scanTx.Abort()
	fmt.Println()

	// Crash: discard the in-memory state, replay the recovery log into a
	// fresh stack. Redo uses the same blind updates as normal operation.
	if err := txc.Close(); err != nil {
		log.Fatal(err)
	}
	fresh, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tc.Recover(logDev, fresh.Tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash recovery: replayed %d committed writes (through ts %d)\n", res.Applied, res.MaxTS)
	v, ok, err := fresh.Tree.Get(costperf.Key(0))
	if err != nil || !ok {
		log.Fatalf("account 0 lost in recovery: ok=%v err=%v", ok, err)
	}
	fmt.Printf("account 0 after recovery: %s\n", v)
}
