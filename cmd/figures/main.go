// Command figures regenerates the data behind every figure in the paper's
// evaluation (Figures 1, 2, 3, 7, 8) from the cost model, printing either
// a readable table or CSV.
//
// Usage:
//
//	figures            # all figures, tables
//	figures -fig 2     # one figure
//	figures -csv       # CSV output
//	figures -points 9  # samples per series
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"costperf/internal/core"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1,2,3,7,8, 9=NVRAM extension); 0 = all")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	points := flag.Int("points", 9, "samples per series")
	size := flag.Float64("dbsize", 6.1e9, "database size in bytes for Figure 3")
	flag.Parse()

	if *points < 2 {
		fmt.Fprintln(os.Stderr, "figures: -points must be >= 2")
		os.Exit(2)
	}
	costs := core.PaperCosts()
	cmp := core.PaperComparison()
	css := core.DefaultCSS()

	all := map[int]func() core.Figure{
		1: func() core.Figure { return core.Figure1(costs.R, *points) },
		2: func() core.Figure { return core.Figure2(costs, *points) },
		3: func() core.Figure { return core.Figure3(cmp, *size, *points) },
		7: func() core.Figure { return core.Figure7(costs, []float64{9, costs.R}, *points) },
		8: func() core.Figure { return core.Figure8(costs, css, *points) },
		// 9 is not a paper figure: the Section 8.2 NVRAM extension chart.
		9: func() core.Figure { return core.FigureNVRAM(costs, core.DefaultNVRAM(), *points) },
	}
	order := []int{1, 2, 3, 7, 8, 9}
	if *fig != 0 {
		gen, ok := all[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (have 1,2,3,7,8,9)\n", *fig)
			os.Exit(2)
		}
		emit(gen(), *csv)
		return
	}
	for _, n := range order {
		emit(all[n](), *csv)
		fmt.Println()
	}
}

func emit(f core.Figure, csv bool) {
	if csv {
		fmt.Printf("# %s\n", f.Title)
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Name)
		}
		fmt.Println(strings.Join(header, ","))
		for i := range f.Series[0].Points {
			row := []string{fmt.Sprintf("%g", f.Series[0].Points[i].X)}
			for _, s := range f.Series {
				row = append(row, fmt.Sprintf("%g", s.Points[i].Y))
			}
			fmt.Println(strings.Join(row, ","))
		}
		return
	}
	fmt.Println(f.Title)
	fmt.Printf("%14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Printf(" %18s", s.Name)
	}
	fmt.Println()
	for i := range f.Series[0].Points {
		fmt.Printf("%14.4g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Printf(" %18.6g", s.Points[i].Y)
		}
		fmt.Println()
	}
	// Annotate crossovers where the figure has exactly two cost lines.
	if len(f.Series) >= 2 {
		for i := 0; i < len(f.Series); i++ {
			for j := i + 1; j < len(f.Series); j++ {
				if x, ok := core.Crossover(f.Series[i], f.Series[j]); ok {
					fmt.Printf("  crossover %s / %s at x = %.6g\n", f.Series[i].Name, f.Series[j].Name, x)
				}
			}
		}
	}
}
