// Benchmark snapshot persistence: every BENCH_*.json kvbench emits shares
// one meta header (git commit, UTC timestamp, toolchain, mode, store,
// flattened config) so results from different PRs and machines are
// comparable without archaeology. Modes contribute only their results
// struct; the envelope is written here.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// benchMeta is the shared header of every benchmark snapshot.
type benchMeta struct {
	// GitCommit is the vcs revision baked into the binary by the go
	// toolchain ("unknown" for a non-vcs build, e.g. go run from a
	// tarball); GitDirty marks uncommitted changes at build time.
	GitCommit string `json:"git_commit"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	// TimestampUTC is the wall-clock moment the snapshot was written.
	TimestampUTC string `json:"timestamp_utc"`
	GoVersion    string `json:"go_version"`
	// Mode names the kvbench mode ("wire", "shard", ...); Store the
	// backing store under test; Config the mode's relevant flag values.
	Mode   string         `json:"mode"`
	Store  string         `json:"store"`
	Config map[string]any `json:"config,omitempty"`
}

// benchSnapshot is the on-disk envelope: {"meta": ..., "results": ...}.
type benchSnapshot struct {
	Meta    benchMeta `json:"meta"`
	Results any       `json:"results"`
}

// buildMeta assembles the header from the binary's build info.
func buildMeta(mode, store string, config map[string]any) benchMeta {
	m := benchMeta{
		GitCommit:    "unknown",
		TimestampUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		Mode:         mode,
		Store:        store,
		Config:       config,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitCommit = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// benchOutPath resolves the -bench-out flag for a mode: "auto" names the
// snapshot after the mode (BENCH_wire.json, BENCH_shard.json, ...) and
// empty disables persistence.
func benchOutPath(flagVal, mode string) string {
	if flagVal == "auto" {
		return fmt.Sprintf("BENCH_%s.json", mode)
	}
	return flagVal
}

// writeBenchSnapshot persists one mode's results under the shared meta
// envelope. A failure to persist is fatal like any other kvbench error:
// a benchmark that silently lost its numbers did not run.
func writeBenchSnapshot(path, mode, store string, config map[string]any, results any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(benchSnapshot{Meta: buildMeta(mode, store, config), Results: results}, "", "  ")
	check(err)
	check(os.WriteFile(path, append(buf, '\n'), 0o644))
	fmt.Printf("  snapshot: %s\n", path)
}
