// Matrix mode: run the named scenario matrix — scenario x store x
// concurrency cells, every cell the same deterministic op stream per seed
// — through the engine front-end, and persist one BENCH_matrix.json under
// the shared snapshot meta header. Each cell records throughput, latency
// percentiles, shed/error counts, and the live $/op and five-minute-rule
// breakeven from the store's CostSnapshot, so cmd/benchdiff can hold the
// next PR to this PR's numbers.
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"costperf/internal/core"
	"costperf/internal/engine"
	"costperf/internal/obs"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// matrixModeConfig drives -matrix.
type matrixModeConfig struct {
	scenarios string // comma list or "all"
	stores    string // comma list
	concs     string // comma list of worker counts
	keys      uint64
	ops       int
	valueSize int
	pool      int
	seed      int64
	benchOut  string
}

// matrixCell is one grid point's persisted result.
type matrixCell struct {
	// Key identifies the cell across snapshots: scenario/store/cN.
	// cmd/benchdiff matches rows on it.
	Key         string `json:"key"`
	Scenario    string `json:"scenario"`
	Store       string `json:"store"`
	Concurrency int    `json:"concurrency"`

	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`

	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Timeouts  int64 `json:"timeouts"`
	Errors    int64 `json:"errors"`

	// Cost is the store tracer's snapshot priced at paper rates: measured
	// F/R/ROPS/IOPS and the live $/op + breakeven (internal/obs).
	Cost obs.SnapshotExport `json:"cost"`
}

// matrixBenchResults is the persisted results block of BENCH_matrix.json.
// The scenario definitions ride along so every snapshot is self-describing:
// a cell's numbers can be interpreted without the source tree that made it.
type matrixBenchResults struct {
	ScenarioDefs []workload.Scenario `json:"scenario_defs"`
	Cells        []matrixCell        `json:"cells"`
}

// runMatrixMode resolves the grid and runs it cell by cell.
func runMatrixMode(cfg matrixModeConfig) {
	scenarios := resolveScenarios(cfg.scenarios)
	stores := splitList(cfg.stores)
	concs := parseConcList(cfg.concs)
	if len(stores) == 0 || len(concs) == 0 {
		fmt.Fprintln(os.Stderr, "kvbench: -matrix needs at least one store and one concurrency")
		os.Exit(2)
	}

	fmt.Printf("matrix: %d scenarios x %d stores x %d concurrency = %d cells (%d keys / %d ops each, seed %d)\n",
		len(scenarios), len(stores), len(concs), len(scenarios)*len(stores)*len(concs),
		cfg.keys, cfg.ops, cfg.seed)
	for _, sc := range scenarios {
		fmt.Printf("  %s\n", sc.Describe())
	}
	fmt.Println()

	results := matrixBenchResults{ScenarioDefs: scenarios}
	for _, storeName := range stores {
		for _, sc := range scenarios {
			for _, conc := range concs {
				cell := runMatrixCell(sc, storeName, conc, cfg)
				results.Cells = append(results.Cells, cell)
				fmt.Printf("  %-32s %9.0f ops/s  p99=%7.0fus  shed=%-4d err=%-4d $/Mop=%8.3f be=%.0fs\n",
					cell.Key, cell.OpsPerSec, cell.P99Micros, cell.Shed, cell.Errors,
					cell.Cost.DollarPerMop, cell.Cost.BreakevenSec)
			}
		}
	}

	writeBenchSnapshot(benchOutPath(cfg.benchOut, "matrix"), "matrix", cfg.stores, map[string]any{
		"scenarios": scenarioNames(scenarios), "stores": stores, "concurrency": concs,
		"keys": cfg.keys, "ops": cfg.ops, "value_size": cfg.valueSize,
		"pool": cfg.pool, "seed": cfg.seed,
	}, results)
}

// runMatrixCell builds a fresh store + engine, loads the keyspace clean,
// then drives the scenario's deterministic op stream with conc workers.
func runMatrixCell(sc workload.Scenario, storeName string, conc int, cfg matrixModeConfig) matrixCell {
	ops, err := workload.GenerateScenario(sc, workload.ScenarioConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize, Ops: cfg.ops, Seed: cfg.seed,
	})
	check(err)

	dev := ssd.New(ssd.SamsungSSD)
	reg := obs.NewRegistry()
	tr := reg.Tracer(storeName)
	dev.SetObserver(tr)
	es := buildEngineStore(storeName, cfg.pool, dev, reg, tr)

	bg := context.Background()
	for i := uint64(0); i < cfg.keys; i++ {
		check(es.Put(bg, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	dev.Stats().Reset()
	reg.ResetAll() // measure the run, not the load

	eng, err := engine.New(engine.Config{
		Store:         es,
		MaxConcurrent: conc,
		Obs:           regTracer(reg, "engine"),
	})
	check(err)
	rs := driveEngine(eng, ops, conc)
	snap := tr.Snapshot()
	check(eng.Close())

	lat := rs.latency.Snapshot()
	return matrixCell{
		Key:      fmt.Sprintf("%s/%s/c%d", sc.Name, storeName, conc),
		Scenario: sc.Name, Store: storeName, Concurrency: conc,
		Ops:       len(ops),
		ElapsedMS: float64(rs.elapsed.Microseconds()) / 1000,
		OpsPerSec: float64(len(ops)) / rs.elapsed.Seconds(),
		P50Micros: lat.P50, P95Micros: lat.P95, P99Micros: lat.P99, MaxMicros: lat.Max,
		Completed: rs.completed.Value(), Shed: rs.shed.Value(),
		Timeouts: rs.timeouts.Value(), Errors: rs.fails.Value(),
		Cost: snap.Export(core.PaperCosts()),
	}
}

// resolveScenarios expands "-matrix all" or a comma list into scenario
// definitions, rejecting unknown names loudly.
func resolveScenarios(list string) []workload.Scenario {
	if list == "all" {
		return workload.Scenarios()
	}
	var out []workload.Scenario
	for _, name := range splitList(list) {
		sc, ok := workload.ScenarioByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "kvbench: unknown scenario %q (have: %s)\n",
				name, strings.Join(workload.ScenarioNames(), ", "))
			os.Exit(2)
		}
		out = append(out, sc)
	}
	return out
}

func scenarioNames(scs []workload.Scenario) []string {
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	return names
}

// splitList splits a comma list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseConcList parses the -matrix-conc comma list.
func parseConcList(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "kvbench: bad -matrix-conc element %q\n", p)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
