// Command kvbench drives a configurable workload against any of the
// reproduction's stores and reports throughput (in deterministic cost
// units), miss ratios, measured R, and I/O counts — an ad-hoc version of
// the experiments the paper's analysis is built on.
//
// Usage:
//
//	kvbench -store bwtree -keys 100000 -ops 200000 -mix readmostly -dist zipfian
//	kvbench -store masstree -mix readonly
//	kvbench -store lsm -mix updateheavy -dist hotcold
//	kvbench -store btree -pool 256
//
// With -concurrency N the same workload is driven through the engine
// front-end (internal/engine) by N goroutines: ops take real wall-clock
// latency measurements and the report switches to p50/p95/p99 latency plus
// admission-control counters (shed, timeouts, queue depth). -deadline sets
// the per-op deadline applied by the engine:
//
//	kvbench -store lsm -concurrency 8 -deadline 50ms -faults seed=42,write=0.01
//
// With -standby the workload instead runs through a replicated pair
// (internal/repl): a transaction component whose recovery log is shipped
// to a warm standby, semi-synchronous writes, optional lossy ship link,
// mid-run failover, and post-run point-in-time recovery:
//
//	kvbench -standby -keys 20000 -ops 50000 -net-loss 0.05
//	kvbench -standby -failover -ops 50000            # promote at midpoint
//	kvbench -standby -pitr-lsn 0 -obs                # PITR to the midpoint checkpoint
//
// With -shards N the keyspace is hash-partitioned across N independent
// engine+TC fault domains (internal/shard) and the report includes the
// fleet-level $/op roll-up from per-shard cost snapshots. -migrate
// live-migrates one shard to a new owner at the run's midpoint while the
// load continues:
//
//	kvbench -shards 4 -keys 50000 -ops 100000
//	kvbench -shards 4 -migrate                       # cutover under load
//	kvbench -shards 4 -resize                        # split at 1/3, merge back at 2/3
//	kvbench -shards 4 -rebalance                     # $/op-driven split/merge decisions
//
// With -matrix the named scenario matrix (internal/workload.Scenarios)
// runs scenario x store x concurrency cells through the engine front-end
// and persists one BENCH_matrix.json: throughput, latency percentiles,
// shed/error counts, and the live $/op + five-minute-rule breakeven per
// cell. cmd/benchdiff compares two snapshots and enforces regression
// thresholds — the repo's standing performance record:
//
//	kvbench -matrix all
//	kvbench -matrix hot-zipf,scan-heavy -matrix-stores masstree,lsm,btree -matrix-conc 4,16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"costperf/internal/btree"
	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// store is the uniform adapter kvbench drives.
type store interface {
	get(key []byte) error
	put(key, val []byte) error
	del(key []byte) error
	blind(key, val []byte) error
	scan(start []byte, limit int) error
}

func main() {
	storeName := flag.String("store", "bwtree", "bwtree | masstree | lsm | btree")
	keys := flag.Uint64("keys", 100000, "initial keyspace size")
	ops := flag.Int("ops", 200000, "operations to run")
	mixName := flag.String("mix", "readmostly", "readonly | readmostly | updateheavy | blindheavy | scanmix")
	distName := flag.String("dist", "zipfian", "uniform | zipfian | hotcold | sequential")
	valueSize := flag.Int("value", 100, "value size in bytes")
	pool := flag.Int("pool", 1024, "btree buffer-pool pages")
	evictEvery := flag.Int("evict", 0, "evict all bwtree pages every N ops (0 = never)")
	seed := flag.Int64("seed", 1, "workload seed")
	recordTo := flag.String("record", "", "record the generated operations to this trace file")
	replayFrom := flag.String("replay", "", "replay operations from this trace file instead of generating")
	faultSpec := flag.String("faults", "",
		"deterministic fault-injection spec applied after loading, e.g. seed=42,read=0.001,write=0.001,latency=0.01:0.002 (see internal/fault.ParseSpec)")
	concurrency := flag.Int("concurrency", 0,
		"drive the workload through the engine front-end with N worker goroutines (0 = direct single-threaded mode)")
	deadline := flag.Duration("deadline", 0,
		"per-op deadline applied by the engine (implies -concurrency 1 when unset)")
	queue := flag.Int("queue", 0, "engine admission queue bound (default 2*concurrency)")
	obsDump := flag.Bool("obs", false,
		"trace every operation and print a per-store cost table (measured F, R, ROPS, IOPS, live $/op and five-minute-rule breakeven)")
	mirror := flag.Bool("mirror", false,
		"run the store on a self-healing mirrored device pair (ssd.Mirror): verified reads, read-repair, quarantine; doubles the SS rent in -obs costs")
	scrubRate := flag.Float64("scrub-rate", 256,
		"background scrubber budget in pages/sec with -mirror (each page costs one read per leg; 0 disables the scrubber)")
	standby := flag.Bool("standby", false,
		"run the workload through a replicated pair (internal/repl): a transaction component whose log is shipped to a warm standby; writes are semi-synchronous")
	failover := flag.Bool("failover", false,
		"with -standby, promote the standby at the run's midpoint (epoch-fences the old primary, run continues on the promoted side)")
	pitrLSN := flag.Int64("pitr-lsn", -1,
		"with -standby, replay the shipped log to this LSN after the run and report the reconstructed state (0 = the midpoint checkpoint, -1 = off)")
	serveAddr := flag.String("serve", "",
		"serve the store over the wire protocol on this address (e.g. 127.0.0.1:7070)")
	connectAddr := flag.String("connect", "",
		"drive the workload against a wire server at this address; \"self\" starts one in-process")
	conns := flag.Int("conns", 4, "wire mode: client connections")
	pipelineDepth := flag.Int("pipeline", 16, "wire mode: per-connection in-flight depth")
	shards := flag.Int("shards", 0,
		"partition the keyspace across N independent shard fault domains (internal/shard) and report the fleet $/op roll-up (0 = off)")
	migrateShard := flag.Bool("migrate", false,
		"with -shards, live-migrate one shard to a new owner at the run's midpoint while the load continues")
	resizeShards := flag.Bool("resize", false,
		"with -shards, split the hottest shard at 1/3 of the run and merge the children back at 2/3, all under load")
	rebalanceShards := flag.Bool("rebalance", false,
		"with -shards, run the $/op-share rebalancer: step at 1/3 and 2/3 and let it split/merge on its own signal")
	benchOut := flag.String("bench-out", "auto",
		"write the JSON benchmark snapshot here (\"auto\" = BENCH_<mode>.json, empty = skip)")
	netLoss := flag.Float64("net-loss", 0,
		"with -standby, drop/duplicate/reorder each shipped frame with this probability (seeded by -seed)")
	matrixList := flag.String("matrix", "",
		"run the named scenario matrix through the engine front-end and write BENCH_matrix.json: comma-separated scenario names, or \"all\" for the full built-in set (see internal/workload.Scenarios)")
	matrixStores := flag.String("matrix-stores", "masstree,lsm",
		"matrix mode: comma-separated stores forming the matrix columns")
	matrixConc := flag.String("matrix-conc", "8",
		"matrix mode: comma-separated worker counts; each adds a grid dimension")
	overloadRun := flag.Bool("overload", false,
		"run the three-phase flash-crowd (baseline -> storm -> recovery) through the adaptive engine and write BENCH_overload.json")
	overloadStatic := flag.Bool("overload-static", false,
		"overload mode: use the fixed-limit engine instead of the adaptive limiter (the comparison the adaptive one exists to win)")
	overloadService := flag.Duration("overload-service", 150*time.Microsecond,
		"overload mode: paced-store per-op service time; the store services 4 ops at once and queues the rest, so in-store latency inflates under pressure (0 = raw store)")
	flag.Parse()

	if *matrixList != "" {
		// Matrix cells are many small runs: unless the user sized the run
		// explicitly, use per-cell defaults far below the single-run ones.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		mk, mo := *keys, *ops
		if !explicit["keys"] {
			mk = 20000
		}
		if !explicit["ops"] {
			mo = 30000
		}
		runMatrixMode(matrixModeConfig{
			scenarios: *matrixList, stores: *matrixStores, concs: *matrixConc,
			keys: mk, ops: mo, valueSize: *valueSize, pool: *pool, seed: *seed,
			benchOut: *benchOut,
		})
		return
	}

	if *overloadRun {
		// Like matrix cells, the overload run defaults to a small sizing
		// unless the user asked for more.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		ok, oo, olim := *keys, *ops, *concurrency
		if !explicit["keys"] {
			ok = 20000
		}
		if !explicit["ops"] {
			oo = 60000
		}
		if olim <= 0 {
			olim = 16
		}
		runOverloadMode(overloadModeConfig{
			store: *storeName, keys: ok, ops: oo, valueSize: *valueSize,
			pool: *pool, seed: *seed, limit: olim, queue: *queue,
			static: *overloadStatic, service: *overloadService, benchOut: *benchOut,
		})
		return
	}

	if *serveAddr != "" || *connectAddr != "" {
		wcfg := wireModeConfig{
			store: *storeName, keys: *keys, ops: *ops, mix: *mixName, dist: *distName,
			valueSize: *valueSize, pool: *pool, seed: *seed,
			conns: *conns, pipeline: *pipelineDepth, benchOut: *benchOut,
			concurrency: *concurrency, queue: *queue, deadline: *deadline,
		}
		if *serveAddr != "" {
			wcfg.addr = *serveAddr
			runWireServe(wcfg)
		} else {
			wcfg.addr = *connectAddr
			runWireLoad(wcfg)
		}
		return
	}

	if *shards > 0 {
		runShardMode(shardModeConfig{
			shards: *shards, migrate: *migrateShard,
			resize: *resizeShards, rebalance: *rebalanceShards,
			keys: *keys, ops: *ops, valueSize: *valueSize,
			mix: *mixName, dist: *distName, seed: *seed,
			concurrency: *concurrency, benchOut: *benchOut,
		})
		return
	}

	if *standby {
		runStandbyMode(standbyModeConfig{
			keys: *keys, ops: *ops, valueSize: *valueSize,
			mix: *mixName, dist: *distName, seed: *seed,
			failover: *failover, pitrLSN: *pitrLSN, netLoss: *netLoss,
			obs: *obsDump,
		})
		return
	}

	if *deadline > 0 && *concurrency <= 0 {
		*concurrency = 1
	}
	if *concurrency > 0 {
		runEngineMode(engineModeConfig{
			store: *storeName, keys: *keys, ops: *ops, mix: *mixName, dist: *distName,
			valueSize: *valueSize, pool: *pool, seed: *seed,
			recordTo: *recordTo, replayFrom: *replayFrom, faultSpec: *faultSpec,
			concurrency: *concurrency, deadline: *deadline, queue: *queue,
			obs: *obsDump, mirror: *mirror, scrubRate: *scrubRate,
		})
		return
	}

	sess := sim.NewSession(sim.DefaultCosts())
	dev, mir := newDevice(*mirror)

	// With -obs every store operation is traced; the store's tracer also
	// observes the device, so physical I/O is attributed to it directly.
	var reg *obs.Registry
	var tr *obs.Tracer
	if *obsDump {
		reg = obs.NewRegistry()
		tr = reg.Tracer(*storeName)
		dev.SetObserver(tr)
		if mir != nil {
			tr.FoldMirror(mir.MirrorStats())
		}
	}

	var s store
	var bw *bwtree.Tree
	// faultReport prints the store's retry/health counters after a -faults run.
	var faultReport func()
	switch *storeName {
	case "bwtree":
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 20, SegmentBytes: 4 << 20,
			Obs: regTracer(reg, "log")})
		check(err)
		tree, err := bwtree.New(bwtree.Config{Store: st, Session: sess, Obs: tr})
		check(err)
		tr.FoldRetries(&tree.Stats().Retry)
		tr.FoldHealth(&tree.Stats().Health)
		bw = tree
		s = bwAdapter{tree}
		faultReport = func() {
			fmt.Printf("  bwtree retry: %s, health: %s\n", tree.Stats().Retry.String(), tree.Stats().Health.String())
			fmt.Printf("  logstore retry: %s, health: %s\n", st.Stats().Retry.String(), st.Stats().Health.String())
		}
	case "masstree":
		mt := masstree.New(sess)
		mt.SetObs(tr)
		s = mtAdapter{mt}
	case "lsm":
		tree, err := lsm.New(lsm.Config{Device: dev, Session: sess, Obs: tr})
		check(err)
		tr.FoldRetries(&tree.Stats().Retry)
		tr.FoldHealth(&tree.Stats().Health)
		s = lsmAdapter{tree}
		faultReport = func() {
			fmt.Printf("  lsm retry: %s, health: %s\n", tree.Stats().Retry.String(), tree.Stats().Health.String())
		}
	case "btree":
		tree, err := btree.New(btree.Config{Device: dev, PoolPages: *pool, Session: sess, Obs: tr})
		check(err)
		s = btAdapter{tree}
	default:
		fmt.Fprintf(os.Stderr, "kvbench: unknown store %q\n", *storeName)
		os.Exit(2)
	}

	chooser := pickChooser(*distName, *seed)
	mix := pickMix(*mixName)

	// Load.
	fmt.Printf("loading %d keys into %s...\n", *keys, *storeName)
	for i := uint64(0); i < *keys; i++ {
		check(s.put(workload.Key(i), workload.ValueFor(i, *valueSize)))
	}
	sess.Tracker().Reset()
	dev.Stats().Reset()
	if reg != nil {
		reg.ResetAll() // measure the run, not the load
	}

	// Install fault injection only for the measured phase: the load above
	// runs clean so every run starts from the same store state.
	if *faultSpec != "" {
		inj, err := fault.ParseSpec(*faultSpec)
		check(err)
		dev.SetFaultInjector(inj)
		fmt.Printf("injecting faults: %s\n", *faultSpec)
	}
	if mir != nil && *scrubRate > 0 {
		mir.StartScrub(*scrubRate)
		defer mir.StopScrub()
		fmt.Printf("scrubbing at %.0f pages/sec (%.0f IOPS budget)\n", *scrubRate, 2**scrubRate)
	}

	apply := func(i int, op workload.Op) {
		switch op.Kind {
		case workload.OpRead:
			check(s.get(op.Key))
		case workload.OpUpdate, workload.OpInsert:
			check(s.put(op.Key, op.Value))
		case workload.OpBlindWrite:
			check(s.blind(op.Key, op.Value))
		case workload.OpScan:
			check(s.scan(op.Key, op.ScanLen))
		case workload.OpDelete:
			check(s.del(op.Key))
		}
		if bw != nil && *evictEvery > 0 && i%*evictEvery == *evictEvery-1 {
			for _, pid := range bw.Pages() {
				check(bw.EvictPage(pid, true))
			}
		}
	}

	if *replayFrom != "" {
		f, err := os.Open(*replayFrom)
		check(err)
		defer f.Close()
		fmt.Printf("replaying trace %s...\n", *replayFrom)
		i := 0
		n, err := workload.Replay(f, func(op workload.Op) error {
			apply(i, op)
			i++
			return nil
		})
		check(err)
		fmt.Printf("replayed %d ops\n", n)
	} else {
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Keys: *keys, ValueSize: *valueSize, Mix: mix, Chooser: chooser, Seed: *seed,
		})
		check(err)
		var tw *workload.TraceWriter
		if *recordTo != "" {
			f, err := os.Create(*recordTo)
			check(err)
			defer f.Close()
			tw, err = workload.NewTraceWriter(f)
			check(err)
		}
		fmt.Printf("running %d ops (%s / %s)...\n", *ops, *mixName, *distName)
		for i := 0; i < *ops; i++ {
			op := gen.Next()
			if tw != nil {
				check(tw.Append(op))
			}
			apply(i, op)
		}
		if tw != nil {
			check(tw.Flush())
			fmt.Printf("recorded %d ops to %s\n", tw.Count(), *recordTo)
		}
	}

	tk := sess.Tracker()
	fmt.Println("\nresults (deterministic cost units):")
	fmt.Printf("  %s\n", tk.String())
	fmt.Printf("  throughput: %.6f ops/cost-unit (P0 analogue: %.6f)\n", tk.Throughput(), tk.MMThroughput())
	if tk.R() > 0 {
		fmt.Printf("  measured R = %.2f (paper: 5.8 user-level, ~9 kernel)\n", tk.R())
	}
	fmt.Printf("  device: %s\n", dev.Stats().String())
	if mir != nil {
		fmt.Printf("  mirror: %s\n", mir.MirrorStats().String())
	}
	if *faultSpec != "" && faultReport != nil {
		fmt.Println("fault absorption:")
		faultReport()
	}
	printObsTable(reg)
}

// newDevice builds the benchmark device: a bare SamsungSSD, or (with
// -mirror) a self-healing mirrored pair whose non-nil *ssd.Mirror is also
// returned for scrubber control and stats.
func newDevice(mirrored bool) (ssd.Dev, *ssd.Mirror) {
	if mirrored {
		m := ssd.NewMirror(ssd.SamsungSSD)
		return m, m
	}
	return ssd.New(ssd.SamsungSSD), nil
}

// printObsTable renders the registry's per-store cost table against the
// paper's rental rates: measured F, R, ROPS, IOPS feed the core model for a
// live $/op and five-minute-rule breakeven (Eq. 7) per store.
func printObsTable(reg *obs.Registry) {
	if reg == nil {
		return
	}
	base := core.PaperCosts()
	fmt.Println("\nobservability (measured model inputs, live costs vs paper rates):")
	fmt.Print(reg.Table(base))
}

// regTracer returns reg's tracer under name, or nil (tracing off) when no
// registry was created.
func regTracer(reg *obs.Registry, name string) *obs.Tracer {
	if reg == nil {
		return nil
	}
	return reg.Tracer(name)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
}

func pickChooser(dist string, seed int64) workload.KeyChooser {
	switch dist {
	case "uniform":
		return workload.NewUniform(seed)
	case "zipfian":
		return workload.NewZipfian(seed, 0.99)
	case "hotcold":
		return workload.NewHotCold(seed, 0.1, 0.9)
	case "sequential":
		return workload.NewSequential()
	default:
		fmt.Fprintf(os.Stderr, "kvbench: unknown distribution %q\n", dist)
		os.Exit(2)
		return nil
	}
}

func pickMix(name string) workload.Mix {
	mixes := map[string]workload.Mix{
		"readonly":    workload.ReadOnly,
		"readmostly":  workload.ReadMostly,
		"updateheavy": workload.UpdateHeavy,
		"blindheavy":  workload.BlindWriteHeavy,
		"scanmix":     workload.ScanMix,
	}
	mix, ok := mixes[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "kvbench: unknown mix %q\n", name)
		os.Exit(2)
	}
	return mix
}

// --- engine mode: concurrent workers through the front-end ---

type engineModeConfig struct {
	store, mix, dist     string
	keys                 uint64
	ops, valueSize, pool int
	seed                 int64
	recordTo, replayFrom string
	faultSpec            string
	concurrency, queue   int
	deadline             time.Duration
	obs                  bool
	mirror               bool
	scrubRate            float64
}

// runEngineMode drives the workload through internal/engine with N worker
// goroutines. Unlike direct mode, latencies here are real wall-clock
// measurements (the stores still meter deterministic costs internally), and
// the report adds the front-end's admission-control and breaker counters.
// The stores run without a sim session: concurrent workers would race on a
// shared charger, and the interesting numbers in this mode are latency
// percentiles and shed/timeout counts, not cost units.
func runEngineMode(cfg engineModeConfig) {
	dev, mir := newDevice(cfg.mirror)
	var reg *obs.Registry
	var tr *obs.Tracer
	if cfg.obs {
		reg = obs.NewRegistry()
		tr = reg.Tracer(cfg.store)
		dev.SetObserver(tr)
		if mir != nil {
			tr.FoldMirror(mir.MirrorStats())
		}
	}
	es := buildEngineStore(cfg.store, cfg.pool, dev, reg, tr)

	// Load sequentially and clean, as in direct mode.
	fmt.Printf("loading %d keys into %s...\n", cfg.keys, cfg.store)
	bg := context.Background()
	for i := uint64(0); i < cfg.keys; i++ {
		check(es.Put(bg, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	dev.Stats().Reset()
	if cfg.faultSpec != "" {
		inj, err := fault.ParseSpec(cfg.faultSpec)
		check(err)
		dev.SetFaultInjector(inj)
		fmt.Printf("injecting faults: %s\n", cfg.faultSpec)
	}

	if reg != nil {
		reg.ResetAll() // measure the run, not the load
	}
	if mir != nil && cfg.scrubRate > 0 {
		mir.StartScrub(cfg.scrubRate)
		defer mir.StopScrub()
		fmt.Printf("scrubbing at %.0f pages/sec (%.0f IOPS budget)\n", cfg.scrubRate, 2*cfg.scrubRate)
	}

	ops := collectOps(cfg)
	eng, err := engine.New(engine.Config{
		Store:          es,
		MaxConcurrent:  cfg.concurrency,
		MaxQueue:       cfg.queue,
		DefaultTimeout: cfg.deadline,
		Obs:            regTracer(reg, "engine"),
	})
	check(err)

	fmt.Printf("running %d ops (%s / %s) with %d workers", len(ops), cfg.mix, cfg.dist, cfg.concurrency)
	if cfg.deadline > 0 {
		fmt.Printf(", deadline %v", cfg.deadline)
	}
	fmt.Println("...")

	rs := driveEngine(eng, ops, cfg.concurrency)

	st := eng.Stats()
	lat := rs.latency.Snapshot()
	fmt.Println("\nresults (engine mode, wall-clock):")
	fmt.Printf("  elapsed: %v  (%.0f ops/sec)\n", rs.elapsed.Round(time.Microsecond),
		float64(len(ops))/rs.elapsed.Seconds())
	fmt.Printf("  completed=%d shed=%d timeouts=%d errors=%d\n",
		rs.completed.Value(), rs.shed.Value(), rs.timeouts.Value(), rs.fails.Value())
	fmt.Printf("  latency (us): p50=%.0f p95=%.0f p99=%.0f max=%.0f\n", lat.P50, lat.P95, lat.P99, lat.Max)
	qw := st.WaitMicros.Snapshot()
	if qw.Count > 0 {
		fmt.Printf("  queue wait (us): n=%d p50=%.0f p95=%.0f p99=%.0f peak depth=%d\n",
			qw.Count, qw.P50, qw.P95, qw.P99, st.QueuePeak.Value())
	}
	fmt.Printf("  engine: %s\n", st.String())
	fmt.Printf("  device: %s\n", dev.Stats().String())
	if mir != nil {
		fmt.Printf("  mirror: %s\n", mir.MirrorStats().String())
	}
	printObsTable(reg)
	check(eng.Close())
}

// buildEngineStore constructs the named store on dev behind the engine
// front-end's Store interface, wiring tr (nil-safe, nil = tracing off)
// into the store and, for bwtree, a "log" tracer into its logstore.
// Engine, wire, and matrix modes all build their backends here.
func buildEngineStore(name string, pool int, dev ssd.Dev, reg *obs.Registry, tr *obs.Tracer) engine.Store {
	switch name {
	case "bwtree":
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 20, SegmentBytes: 4 << 20,
			Obs: regTracer(reg, "log")})
		check(err)
		tree, err := bwtree.New(bwtree.Config{Store: st, Obs: tr})
		check(err)
		tr.FoldRetries(&tree.Stats().Retry)
		tr.FoldHealth(&tree.Stats().Health)
		return engine.WrapBwTree(tree)
	case "masstree":
		mt := masstree.New(nil)
		mt.SetObs(tr)
		return engine.WrapMassTree(mt)
	case "lsm":
		tree, err := lsm.New(lsm.Config{Device: dev, Obs: tr})
		check(err)
		tr.FoldRetries(&tree.Stats().Retry)
		tr.FoldHealth(&tree.Stats().Health)
		return engine.WrapLSM(tree)
	case "btree":
		tree, err := btree.New(btree.Config{Device: dev, PoolPages: pool, Obs: tr})
		check(err)
		return engine.WrapBTree(tree)
	default:
		fmt.Fprintf(os.Stderr, "kvbench: unknown store %q\n", name)
		os.Exit(2)
		return nil
	}
}

// engineRunStats is a worker-pool run's client-side measurement: per-op
// wall-clock latency and outcome classification.
type engineRunStats struct {
	latency                          metrics.Histogram // microseconds
	completed, shed, timeouts, fails metrics.Counter
	elapsed                          time.Duration
}

// driveEngine pushes ops through eng with the given number of worker
// goroutines, timing every op and classifying its outcome. Engine mode
// and matrix mode share this loop so their numbers are comparable.
func driveEngine(eng *engine.Engine, ops []workload.Op, workers int) *engineRunStats {
	rs := &engineRunStats{}
	bg := context.Background()
	opCh := make(chan workload.Op)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range opCh {
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = eng.Get(bg, op.Key)
				case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
					err = eng.Put(bg, op.Key, op.Value)
				case workload.OpScan:
					err = eng.Scan(bg, op.Key, op.ScanLen, func(_, _ []byte) bool { return true })
				case workload.OpDelete:
					err = eng.Delete(bg, op.Key)
				}
				rs.latency.Observe(float64(time.Since(t0).Microseconds()))
				switch {
				case err == nil:
					rs.completed.Inc()
				case errors.Is(err, engine.ErrOverload):
					rs.shed.Inc()
				case errors.Is(err, context.DeadlineExceeded):
					rs.timeouts.Inc()
				default:
					rs.fails.Inc()
				}
			}
		}()
	}
	for _, op := range ops {
		opCh <- op
	}
	close(opCh)
	wg.Wait()
	rs.elapsed = time.Since(start)
	return rs
}

// collectOps materialises the op stream so workers can consume it
// concurrently: either a replayed trace or cfg.ops generated operations
// (recorded to -record when asked, identically to direct mode).
func collectOps(cfg engineModeConfig) []workload.Op {
	if cfg.replayFrom != "" {
		f, err := os.Open(cfg.replayFrom)
		check(err)
		defer f.Close()
		var ops []workload.Op
		_, err = workload.Replay(f, func(op workload.Op) error {
			ops = append(ops, op)
			return nil
		})
		check(err)
		fmt.Printf("replaying trace %s (%d ops)\n", cfg.replayFrom, len(ops))
		return ops
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize,
		Mix: pickMix(cfg.mix), Chooser: pickChooser(cfg.dist, cfg.seed), Seed: cfg.seed,
	})
	check(err)
	var tw *workload.TraceWriter
	if cfg.recordTo != "" {
		f, err := os.Create(cfg.recordTo)
		check(err)
		defer f.Close()
		tw, err = workload.NewTraceWriter(f)
		check(err)
	}
	ops := make([]workload.Op, 0, cfg.ops)
	for i := 0; i < cfg.ops; i++ {
		op := gen.Next()
		if tw != nil {
			check(tw.Append(op))
		}
		ops = append(ops, op)
	}
	if tw != nil {
		check(tw.Flush())
		fmt.Printf("recorded %d ops to %s\n", tw.Count(), cfg.recordTo)
	}
	return ops
}

type bwAdapter struct{ t *bwtree.Tree }

func (a bwAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a bwAdapter) put(k, v []byte) error   { return a.t.Insert(k, v) }
func (a bwAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a bwAdapter) blind(k, v []byte) error { return a.t.BlindWrite(k, v) }
func (a bwAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}

type mtAdapter struct{ t *masstree.Tree }

func (a mtAdapter) get(k []byte) error      { a.t.Get(k); return nil }
func (a mtAdapter) put(k, v []byte) error   { a.t.Put(k, v); return nil }
func (a mtAdapter) del(k []byte) error      { a.t.Delete(k); return nil }
func (a mtAdapter) blind(k, v []byte) error { a.t.Put(k, v); return nil }
func (a mtAdapter) scan(start []byte, limit int) error {
	a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
	return nil
}

type lsmAdapter struct{ t *lsm.Tree }

func (a lsmAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a lsmAdapter) put(k, v []byte) error   { return a.t.Put(k, v) }
func (a lsmAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a lsmAdapter) blind(k, v []byte) error { return a.t.Put(k, v) }
func (a lsmAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}

type btAdapter struct{ t *btree.Tree }

func (a btAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a btAdapter) put(k, v []byte) error   { return a.t.Insert(k, v) }
func (a btAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a btAdapter) blind(k, v []byte) error { return a.t.Insert(k, v) }
func (a btAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}
