// Command kvbench drives a configurable workload against any of the
// reproduction's stores and reports throughput (in deterministic cost
// units), miss ratios, measured R, and I/O counts — an ad-hoc version of
// the experiments the paper's analysis is built on.
//
// Usage:
//
//	kvbench -store bwtree -keys 100000 -ops 200000 -mix readmostly -dist zipfian
//	kvbench -store masstree -mix readonly
//	kvbench -store lsm -mix updateheavy -dist hotcold
//	kvbench -store btree -pool 256
package main

import (
	"flag"
	"fmt"
	"os"

	"costperf/internal/btree"
	"costperf/internal/bwtree"
	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// store is the uniform adapter kvbench drives.
type store interface {
	get(key []byte) error
	put(key, val []byte) error
	del(key []byte) error
	blind(key, val []byte) error
	scan(start []byte, limit int) error
}

func main() {
	storeName := flag.String("store", "bwtree", "bwtree | masstree | lsm | btree")
	keys := flag.Uint64("keys", 100000, "initial keyspace size")
	ops := flag.Int("ops", 200000, "operations to run")
	mixName := flag.String("mix", "readmostly", "readonly | readmostly | updateheavy | blindheavy | scanmix")
	distName := flag.String("dist", "zipfian", "uniform | zipfian | hotcold | sequential")
	valueSize := flag.Int("value", 100, "value size in bytes")
	pool := flag.Int("pool", 1024, "btree buffer-pool pages")
	evictEvery := flag.Int("evict", 0, "evict all bwtree pages every N ops (0 = never)")
	seed := flag.Int64("seed", 1, "workload seed")
	recordTo := flag.String("record", "", "record the generated operations to this trace file")
	replayFrom := flag.String("replay", "", "replay operations from this trace file instead of generating")
	faultSpec := flag.String("faults", "",
		"deterministic fault-injection spec applied after loading, e.g. seed=42,read=0.001,write=0.001,latency=0.01:0.002 (see internal/fault.ParseSpec)")
	flag.Parse()

	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)

	var s store
	var bw *bwtree.Tree
	// faultReport prints the store's retry/health counters after a -faults run.
	var faultReport func()
	switch *storeName {
	case "bwtree":
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 20, SegmentBytes: 4 << 20})
		check(err)
		tree, err := bwtree.New(bwtree.Config{Store: st, Session: sess})
		check(err)
		bw = tree
		s = bwAdapter{tree}
		faultReport = func() {
			fmt.Printf("  bwtree retry: %s, health: %s\n", tree.Stats().Retry.String(), tree.Stats().Health.String())
			fmt.Printf("  logstore retry: %s, health: %s\n", st.Stats().Retry.String(), st.Stats().Health.String())
		}
	case "masstree":
		s = mtAdapter{masstree.New(sess)}
	case "lsm":
		tree, err := lsm.New(lsm.Config{Device: dev, Session: sess})
		check(err)
		s = lsmAdapter{tree}
		faultReport = func() {
			fmt.Printf("  lsm retry: %s, health: %s\n", tree.Stats().Retry.String(), tree.Stats().Health.String())
		}
	case "btree":
		tree, err := btree.New(btree.Config{Device: dev, PoolPages: *pool, Session: sess})
		check(err)
		s = btAdapter{tree}
	default:
		fmt.Fprintf(os.Stderr, "kvbench: unknown store %q\n", *storeName)
		os.Exit(2)
	}

	var chooser workload.KeyChooser
	switch *distName {
	case "uniform":
		chooser = workload.NewUniform(*seed)
	case "zipfian":
		chooser = workload.NewZipfian(*seed, 0.99)
	case "hotcold":
		chooser = workload.NewHotCold(*seed, 0.1, 0.9)
	case "sequential":
		chooser = workload.NewSequential()
	default:
		fmt.Fprintf(os.Stderr, "kvbench: unknown distribution %q\n", *distName)
		os.Exit(2)
	}

	mixes := map[string]workload.Mix{
		"readonly":    workload.ReadOnly,
		"readmostly":  workload.ReadMostly,
		"updateheavy": workload.UpdateHeavy,
		"blindheavy":  workload.BlindWriteHeavy,
		"scanmix":     workload.ScanMix,
	}
	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "kvbench: unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	// Load.
	fmt.Printf("loading %d keys into %s...\n", *keys, *storeName)
	for i := uint64(0); i < *keys; i++ {
		check(s.put(workload.Key(i), workload.ValueFor(i, *valueSize)))
	}
	sess.Tracker().Reset()
	dev.Stats().Reset()

	// Install fault injection only for the measured phase: the load above
	// runs clean so every run starts from the same store state.
	if *faultSpec != "" {
		inj, err := fault.ParseSpec(*faultSpec)
		check(err)
		dev.SetFaultInjector(inj)
		fmt.Printf("injecting faults: %s\n", *faultSpec)
	}

	apply := func(i int, op workload.Op) {
		switch op.Kind {
		case workload.OpRead:
			check(s.get(op.Key))
		case workload.OpUpdate, workload.OpInsert:
			check(s.put(op.Key, op.Value))
		case workload.OpBlindWrite:
			check(s.blind(op.Key, op.Value))
		case workload.OpScan:
			check(s.scan(op.Key, op.ScanLen))
		case workload.OpDelete:
			check(s.del(op.Key))
		}
		if bw != nil && *evictEvery > 0 && i%*evictEvery == *evictEvery-1 {
			for _, pid := range bw.Pages() {
				check(bw.EvictPage(pid, true))
			}
		}
	}

	if *replayFrom != "" {
		f, err := os.Open(*replayFrom)
		check(err)
		defer f.Close()
		fmt.Printf("replaying trace %s...\n", *replayFrom)
		i := 0
		n, err := workload.Replay(f, func(op workload.Op) error {
			apply(i, op)
			i++
			return nil
		})
		check(err)
		fmt.Printf("replayed %d ops\n", n)
	} else {
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Keys: *keys, ValueSize: *valueSize, Mix: mix, Chooser: chooser, Seed: *seed,
		})
		check(err)
		var tw *workload.TraceWriter
		if *recordTo != "" {
			f, err := os.Create(*recordTo)
			check(err)
			defer f.Close()
			tw, err = workload.NewTraceWriter(f)
			check(err)
		}
		fmt.Printf("running %d ops (%s / %s)...\n", *ops, *mixName, *distName)
		for i := 0; i < *ops; i++ {
			op := gen.Next()
			if tw != nil {
				check(tw.Append(op))
			}
			apply(i, op)
		}
		if tw != nil {
			check(tw.Flush())
			fmt.Printf("recorded %d ops to %s\n", tw.Count(), *recordTo)
		}
	}

	tk := sess.Tracker()
	fmt.Println("\nresults (deterministic cost units):")
	fmt.Printf("  %s\n", tk.String())
	fmt.Printf("  throughput: %.6f ops/cost-unit (P0 analogue: %.6f)\n", tk.Throughput(), tk.MMThroughput())
	if tk.R() > 0 {
		fmt.Printf("  measured R = %.2f (paper: 5.8 user-level, ~9 kernel)\n", tk.R())
	}
	fmt.Printf("  device: %s\n", dev.Stats().String())
	if *faultSpec != "" && faultReport != nil {
		fmt.Println("fault absorption:")
		faultReport()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
}

type bwAdapter struct{ t *bwtree.Tree }

func (a bwAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a bwAdapter) put(k, v []byte) error   { return a.t.Insert(k, v) }
func (a bwAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a bwAdapter) blind(k, v []byte) error { return a.t.BlindWrite(k, v) }
func (a bwAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}

type mtAdapter struct{ t *masstree.Tree }

func (a mtAdapter) get(k []byte) error      { a.t.Get(k); return nil }
func (a mtAdapter) put(k, v []byte) error   { a.t.Put(k, v); return nil }
func (a mtAdapter) del(k []byte) error      { a.t.Delete(k); return nil }
func (a mtAdapter) blind(k, v []byte) error { a.t.Put(k, v); return nil }
func (a mtAdapter) scan(start []byte, limit int) error {
	a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
	return nil
}

type lsmAdapter struct{ t *lsm.Tree }

func (a lsmAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a lsmAdapter) put(k, v []byte) error   { return a.t.Put(k, v) }
func (a lsmAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a lsmAdapter) blind(k, v []byte) error { return a.t.Put(k, v) }
func (a lsmAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}

type btAdapter struct{ t *btree.Tree }

func (a btAdapter) get(k []byte) error      { _, _, err := a.t.Get(k); return err }
func (a btAdapter) put(k, v []byte) error   { return a.t.Insert(k, v) }
func (a btAdapter) del(k []byte) error      { return a.t.Delete(k) }
func (a btAdapter) blind(k, v []byte) error { return a.t.Insert(k, v) }
func (a btAdapter) scan(start []byte, limit int) error {
	return a.t.Scan(start, limit, func(_, _ []byte) bool { return true })
}
