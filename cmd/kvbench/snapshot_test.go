package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"costperf/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestBuildMetaCompleteness(t *testing.T) {
	cfg := map[string]any{"keys": uint64(100), "ops": 200}
	m := buildMeta("matrix", "masstree,lsm", cfg)

	if m.Mode != "matrix" || m.Store != "masstree,lsm" {
		t.Fatalf("mode/store not carried: %+v", m)
	}
	if m.GoVersion == "" {
		t.Error("meta missing go version")
	}
	if m.GitCommit == "" {
		t.Error("meta git commit empty (want a revision or \"unknown\")")
	}
	ts, err := time.Parse(time.RFC3339, m.TimestampUTC)
	if err != nil {
		t.Fatalf("timestamp %q is not RFC3339: %v", m.TimestampUTC, err)
	}
	if ts.Location() != time.UTC {
		t.Errorf("timestamp %q not UTC", m.TimestampUTC)
	}
	if m.Config["ops"] != 200 {
		t.Errorf("config not carried: %+v", m.Config)
	}
}

func TestBenchOutPath(t *testing.T) {
	cases := []struct{ flagVal, mode, want string }{
		{"auto", "matrix", "BENCH_matrix.json"},
		{"auto", "wire", "BENCH_wire.json"},
		{"", "matrix", ""},
		{"/tmp/out.json", "shard", "/tmp/out.json"},
	}
	for _, tc := range cases {
		if got := benchOutPath(tc.flagVal, tc.mode); got != tc.want {
			t.Errorf("benchOutPath(%q, %q) = %q, want %q", tc.flagVal, tc.mode, got, tc.want)
		}
	}
}

func TestWriteBenchSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	results := matrixBenchResults{Cells: []matrixCell{{
		Key: "hot-zipf/lsm/c8", Scenario: "hot-zipf", Store: "lsm", Concurrency: 8,
		Ops: 1000, OpsPerSec: 12345.6, P99Micros: 250,
		Cost: obs.SnapshotExport{Store: "lsm", Ops: 1000, DollarPerMop: 0.5, BreakevenSec: 300},
	}}}
	writeBenchSnapshot(path, "matrix", "lsm", map[string]any{"seed": int64(1)}, results)

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf, []byte("}\n")) {
		t.Error("snapshot missing trailing newline")
	}
	if !bytes.Contains(buf, []byte("\n  \"meta\"")) {
		t.Error("snapshot not two-space indented")
	}

	var sf struct {
		Meta    benchMeta `json:"meta"`
		Results struct {
			Cells []matrixCell `json:"cells"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf, &sf); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if sf.Meta.Mode != "matrix" || sf.Meta.Store != "lsm" {
		t.Fatalf("meta mangled: %+v", sf.Meta)
	}
	if len(sf.Results.Cells) != 1 || sf.Results.Cells[0].Key != "hot-zipf/lsm/c8" {
		t.Fatalf("results mangled: %+v", sf.Results)
	}
	if sf.Results.Cells[0].Cost.BreakevenSec != 300 {
		t.Fatalf("nested cost block mangled: %+v", sf.Results.Cells[0].Cost)
	}

	// writeBenchSnapshot with an empty path is a no-op, not an error.
	writeBenchSnapshot("", "matrix", "lsm", nil, results)
}

// TestSnapshotGolden pins the exact on-disk shape of a matrix snapshot —
// field names, nesting, indentation — with a fixed meta header so the
// bytes are stable. cmd/benchdiff and external tooling parse this format;
// run with -update after an intentional schema change.
func TestSnapshotGolden(t *testing.T) {
	snap := benchSnapshot{
		Meta: benchMeta{
			GitCommit:    "0123456789abcdef0123456789abcdef01234567",
			TimestampUTC: "2026-08-08T00:00:00Z",
			GoVersion:    "go1.X",
			Mode:         "matrix",
			Store:        "masstree,lsm",
			Config: map[string]any{
				"concurrency": []int{8},
				"keys":        20000,
				"ops":         30000,
				"scenarios":   []string{"hot-zipf", "scan-heavy"},
				"seed":        1,
			},
		},
		Results: matrixBenchResults{
			Cells: []matrixCell{
				{
					Key: "hot-zipf/masstree/c8", Scenario: "hot-zipf", Store: "masstree", Concurrency: 8,
					Ops: 30000, ElapsedMS: 120.5, OpsPerSec: 248962.66,
					P50Micros: 12, P95Micros: 40, P99Micros: 85, MaxMicros: 900,
					Completed: 30000,
					Cost: obs.SnapshotExport{
						Store: "masstree", Ops: 30000, F: 0.02, R: 4.1,
						ROPS: 1.2e6, IOPS: 820.4,
						P50Micros: 12, P95Micros: 40, P99Micros: 85,
						DeviceReads: 120, DeviceWrites: 45,
						DollarPerMop: 0.0875, BreakevenSec: 281.4,
					},
				},
				{
					Key: "scan-heavy/lsm/c8", Scenario: "scan-heavy", Store: "lsm", Concurrency: 8,
					Ops: 30000, ElapsedMS: 310.2, OpsPerSec: 96712.44,
					P50Micros: 30, P95Micros: 120, P99Micros: 410, MaxMicros: 2200,
					Completed: 29990, Shed: 10,
					Cost: obs.SnapshotExport{
						Store: "lsm", Ops: 30000, Shed: 10, F: 0.31, R: 9.7,
						ROPS: 4.4e5, IOPS: 30210.9,
						P50Micros: 30, P95Micros: 120, P99Micros: 410,
						DeviceReads: 9300, DeviceWrites: 71,
						DollarPerMop: 0.412, BreakevenSec: 95.2,
					},
				},
			},
		},
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := append(buf, '\n')

	golden := filepath.Join("testdata", "matrix_snapshot.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/kvbench -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot bytes drifted from golden file %s\n--- got ---\n%s", golden, diffFirstLine(got, want))
	}
}

// diffFirstLine points at the first line where two byte slices diverge.
func diffFirstLine(got, want []byte) string {
	gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d: got %q want %q", i+1, gl[i], wl[i])
		}
	}
	return "length differs"
}
