package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"costperf/internal/core"
	"costperf/internal/fault"
	"costperf/internal/obs"
	"costperf/internal/repl"
	"costperf/internal/shard"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// standbyModeConfig drives -standby: the workload runs through a
// repl.Cluster — a primary transaction component whose recovery log is
// continuously shipped to a warm standby, with semi-synchronous writes.
type standbyModeConfig struct {
	keys           uint64
	ops, valueSize int
	mix, dist      string
	seed           int64
	failover       bool    // force a promotion at the run's midpoint
	pitrLSN        int64   // -1 off; 0 = midpoint checkpoint; >0 explicit LSN
	netLoss        float64 // drop/dup/reorder probability on the ship link
	obs            bool
}

// runStandbyMode drives the workload through a replicated pair and reports
// shipping volume, replication lag, and the cost of the extra log-shipping
// leg in the -obs table. With -failover the standby is promoted at the
// midpoint (epoch bump fences the old primary; the run continues on the
// promoted side). With -pitr-lsn the shipped log is replayed to a point in
// time after the run.
func runStandbyMode(cfg standbyModeConfig) {
	pdev := ssd.SamsungSSD
	pdev.Name = "primary-log"
	sdev := ssd.SamsungSSD
	sdev.Name = "standby-log"
	primaryLog, standbyLog := ssd.New(pdev), ssd.New(sdev)

	var net *fault.NetInjector
	if cfg.netLoss > 0 {
		net = fault.NewNetInjector(cfg.seed)
		net.SetRates(cfg.netLoss, cfg.netLoss, cfg.netLoss)
		fmt.Printf("ship link loss: drop/dup/reorder each at %.3f\n", cfg.netLoss)
	}

	var reg *obs.Registry
	var tr *obs.Tracer
	if cfg.obs {
		reg = obs.NewRegistry()
		tr = reg.Tracer("cluster")
		primaryLog.SetObserver(tr)
		standbyLog.SetObserver(tr)
	}

	cluster, err := repl.NewCluster(repl.ClusterConfig{
		PrimaryDC: shard.NewMassDC(), PrimaryLog: primaryLog,
		StandbyDC: shard.NewMassDC(), StandbyLog: standbyLog,
		Net:        net,
		CommitWait: 2 * time.Second,
		AckTimeout: 5 * time.Millisecond,
		RetryBase:  200 * time.Microsecond,
		RetryMax:   5 * time.Millisecond,
		Poll:       50 * time.Microsecond,
		Window:     8,
		Seed:       cfg.seed,
		Obs:        tr,
	})
	check(err)
	defer cluster.Close()

	ctx := context.Background()
	fmt.Printf("loading %d keys through the replicated cluster...\n", cfg.keys)
	for i := uint64(0); i < cfg.keys; i++ {
		check(cluster.Put(ctx, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	if reg != nil {
		reg.ResetAll() // measure the run, not the load
	}

	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize,
		Mix: pickMix(cfg.mix), Chooser: pickChooser(cfg.dist, cfg.seed), Seed: cfg.seed,
	})
	check(err)

	fmt.Printf("running %d ops (%s / %s) through the cluster", cfg.ops, cfg.mix, cfg.dist)
	if cfg.failover {
		fmt.Print(", failover at midpoint")
	}
	fmt.Println("...")

	var acked, reads, fenced, timeouts, fails int
	var ck repl.Checkpoint
	start := time.Now()
	for i := 0; i < cfg.ops; i++ {
		if i == cfg.ops/2 {
			// Quiesced midpoint: record a PITR target while the standby's
			// applied state is exactly the acknowledged prefix.
			ck = cluster.Standby().MarkCheckpoint()
			fmt.Printf("  midpoint checkpoint: LSN %d (ts %d)\n", ck.LSN, ck.TS)
			if cfg.failover {
				check(cluster.Promote())
				fmt.Printf("  promoted standby: epoch %d, old primary fenced\n", cluster.Epoch())
			}
		}
		op := gen.Next()
		var err error
		switch op.Kind {
		case workload.OpRead:
			_, _, err = cluster.Get(ctx, op.Key)
			if err == nil {
				reads++
				continue
			}
		case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
			err = cluster.Put(ctx, op.Key, op.Value)
		case workload.OpScan:
			err = cluster.Scan(ctx, op.Key, op.ScanLen, func(_, _ []byte) bool { return true })
			if err == nil {
				reads++
				continue
			}
		case workload.OpDelete:
			err = cluster.Delete(ctx, op.Key)
		}
		switch {
		case err == nil:
			acked++
		case errors.Is(err, repl.ErrFenced):
			fenced++
		case errors.Is(err, repl.ErrShipTimeout):
			timeouts++
		default:
			fails++
		}
	}
	elapsed := time.Since(start)

	st := cluster.Stats()
	fmt.Println("\nresults (replicated mode, wall-clock):")
	fmt.Printf("  elapsed: %v  (%.0f ops/sec)\n", elapsed.Round(time.Microsecond),
		float64(cfg.ops)/elapsed.Seconds())
	fmt.Printf("  reads=%d acked writes=%d fenced=%d ship-timeouts=%d errors=%d\n",
		reads, acked, fenced, timeouts, fails)
	fmt.Printf("  replication: %s\n", st.String())
	fmt.Printf("  primary durable LSN: %d, standby applied LSN: %d (lag %dB)\n",
		cluster.Primary().DurableLSN(), cluster.Standby().AppliedLSN(), cluster.Standby().LagBytes())
	if cluster.Promoted() {
		fmt.Printf("  failover: promotions=%d epoch=%d\n", st.Promotions.Value(), cluster.Epoch())
	}
	fmt.Printf("  primary log device: %s\n", primaryLog.Stats().String())
	fmt.Printf("  standby log device: %s\n", standbyLog.Stats().String())

	if cfg.pitrLSN >= 0 {
		target := cfg.pitrLSN
		if target == 0 {
			target = ck.LSN
		}
		dst := shard.NewMassDC()
		res, err := cluster.Standby().PITRToLSN(target, dst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: PITR to LSN %d: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Printf("  PITR: replayed %d records to LSN %d (max commit ts %d), reconstructed %d keys\n",
			res.Applied, res.Replay.TruncatedAt, res.MaxTS, dst.Len())
	}

	if reg != nil {
		base := core.PaperCosts()
		fmt.Println("\nobservability (replication leg included in live costs):")
		fmt.Print(reg.Table(base))
	}
}
