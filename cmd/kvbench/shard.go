// Shard mode: drive the workload across a hash-partitioned fleet
// (internal/shard) — N engine+TC instances, each its own fault domain —
// and report the fleet-level cost roll-up: per-shard CostSnapshots folded
// into one ops-weighted $/op. With -migrate a live shard migration runs
// at the midpoint while the load continues, exercising the fence/drain/
// cutover path under real traffic.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"costperf/internal/core"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/shard"
	"costperf/internal/workload"
)

// shardModeConfig drives -shards N [-migrate].
type shardModeConfig struct {
	shards         int
	migrate        bool
	keys           uint64
	ops, valueSize int
	mix, dist      string
	seed           int64
	concurrency    int
	benchOut       string
}

// shardBenchSnapshot is the persisted BENCH_shard.json results block.
type shardBenchSnapshot struct {
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`

	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`

	// Router-level cutover accounting.
	MovedRetries    int64 `json:"moved_retries"`
	CutoverTimeouts int64 `json:"cutover_timeouts"`
	PartialScans    int64 `json:"partial_scans"`
	Fences          int64 `json:"fences"`
	Migrations      int64 `json:"migrations"`

	Migration *shardMigrationResult `json:"migration,omitempty"`

	// Fleet-level $/op and five-minute-rule breakeven (both ops-weighted
	// across shards) plus attribution rows — the same live cost fields
	// the matrix and wire snapshots carry, so all BENCH files compare.
	FleetDollarPerMop float64        `json:"fleet_dollar_per_mop"`
	FleetBreakevenSec float64        `json:"fleet_breakeven_s"`
	FleetOps          int64          `json:"fleet_ops"`
	PerShard          []shardCostRow `json:"per_shard"`
}

type shardMigrationResult struct {
	Shard     int     `json:"shard"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ShipBytes int64   `json:"ship_bytes"`
	Resends   int64   `json:"resends"`
}

type shardCostRow struct {
	Store        string  `json:"store"`
	Ops          int64   `json:"ops"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	DeviceReads  int64   `json:"device_reads"`
	DeviceWrites int64   `json:"device_writes"`
	DollarPerMop float64 `json:"dollar_per_mop"`
	BreakevenSec float64 `json:"breakeven_s"`
}

// runShardMode partitions the keyspace across cfg.shards fault domains
// and drives the workload through the router with concurrent workers.
// Observability is always on here: the fleet $/op roll-up is the result.
func runShardMode(cfg shardModeConfig) {
	if cfg.concurrency <= 0 {
		cfg.concurrency = 4
	}
	reg := obs.NewRegistry()
	r, err := shard.New(shard.Config{
		Shards:   cfg.shards,
		Registry: reg,
		Seed:     cfg.seed,
	})
	check(err)
	defer r.Close()

	ctx := context.Background()
	fmt.Printf("loading %d keys across %d shards...\n", cfg.keys, cfg.shards)
	for i := uint64(0); i < cfg.keys; i++ {
		check(r.Put(ctx, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	reg.ResetAll() // measure the run, not the load

	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize,
		Mix: pickMix(cfg.mix), Chooser: pickChooser(cfg.dist, cfg.seed), Seed: cfg.seed,
	})
	check(err)
	ops := make([]workload.Op, 0, cfg.ops)
	for i := 0; i < cfg.ops; i++ {
		ops = append(ops, gen.Next())
	}

	fmt.Printf("running %d ops (%s / %s) over %d shards with %d workers",
		len(ops), cfg.mix, cfg.dist, cfg.shards, cfg.concurrency)
	if cfg.migrate {
		fmt.Print(", live migration at midpoint")
	}
	fmt.Println("...")

	var (
		completed, failed metrics.Counter
		opCh              = make(chan workload.Op)
		wg                sync.WaitGroup
	)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range opCh {
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = r.Get(ctx, op.Key)
				case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
					err = r.Put(ctx, op.Key, op.Value)
				case workload.OpScan:
					err = r.Scan(ctx, op.Key, op.ScanLen, func(_, _ []byte) bool { return true })
					// A partial scan still delivered the surviving shards'
					// data; count it completed, the router metered it.
					if errors.Is(err, shard.ErrPartialScan) {
						err = nil
					}
				case workload.OpDelete:
					err = r.Delete(ctx, op.Key)
				}
				if err == nil {
					completed.Inc()
				} else {
					failed.Inc()
				}
			}
		}()
	}

	var migRes *shardMigrationResult
	start := time.Now()
	half := len(ops) / 2
	for _, op := range ops[:half] {
		opCh <- op
	}
	if cfg.migrate {
		moving := int(cfg.seed) % cfg.shards
		if moving < 0 {
			moving += cfg.shards
		}
		fmt.Printf("  migrating shard %d under load...\n", moving)
		m, err := r.Migrate(shard.MigrateConfig{Shard: moving})
		check(err)
		t0 := time.Now()
		check(m.Run(ctx))
		migRes = &shardMigrationResult{
			Shard:     moving,
			ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
			ShipBytes: m.Stats().BytesShipped.Value(),
			Resends:   m.Stats().Resends.Value(),
		}
		fmt.Printf("  cutover done in %.1fms (%dB shipped)\n", migRes.ElapsedMS, migRes.ShipBytes)
	}
	for _, op := range ops[half:] {
		opCh <- op
	}
	close(opCh)
	wg.Wait()
	elapsed := time.Since(start)

	base := core.PaperCosts()
	snaps := r.Snapshots()
	fleet := shard.Rollup(snaps, base)

	rs := r.Stats()
	snap := shardBenchSnapshot{
		Shards: cfg.shards, Ops: len(ops),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		OpsPerSec: float64(len(ops)) / elapsed.Seconds(),
		Completed: completed.Value(), Errors: failed.Value(),
		MovedRetries:    rs.MovedRetries.Value(),
		CutoverTimeouts: rs.CutoverTimeouts.Value(),
		PartialScans:    rs.PartialScans.Value(),
		Fences:          rs.Fences.Value(),
		Migrations:      rs.Migrations.Value(),
		Migration:       migRes,

		FleetDollarPerMop: 1e6 * fleet.DollarPerOp,
		FleetOps:          fleet.Ops,
	}
	var beWeighted float64
	for _, s := range fleet.PerShard {
		row := shardCostRow{
			Store: s.Store, Ops: s.Ops, Errors: s.Errors, Shed: s.Shed,
			DeviceReads: s.DeviceReads, DeviceWrites: s.DeviceWrites,
		}
		if s.Ops > 0 {
			row.DollarPerMop = 1e6 * s.DollarPerOp(base)
			row.BreakevenSec = s.BreakevenInterval(base)
			beWeighted += float64(s.Ops) * row.BreakevenSec
		}
		snap.PerShard = append(snap.PerShard, row)
	}
	if fleet.Ops > 0 {
		snap.FleetBreakevenSec = beWeighted / float64(fleet.Ops)
	}

	fmt.Println("\nresults (shard mode, wall-clock):")
	fmt.Printf("  elapsed: %v  (%.0f ops/sec)\n", elapsed.Round(time.Microsecond), snap.OpsPerSec)
	fmt.Printf("  completed=%d errors=%d\n", snap.Completed, snap.Errors)
	fmt.Printf("  router: moved-retries=%d cutover-timeouts=%d partial-scans=%d fences=%d migrations=%d\n",
		snap.MovedRetries, snap.CutoverTimeouts, snap.PartialScans, snap.Fences, snap.Migrations)
	fmt.Println("\nfleet cost roll-up (measured per-shard model inputs, paper rates):")
	fmt.Print(fleet.Table(base))

	writeBenchSnapshot(benchOutPath(cfg.benchOut, "shard"), "shard", "tc", map[string]any{
		"shards": cfg.shards, "migrate": cfg.migrate,
		"keys": cfg.keys, "ops": cfg.ops, "mix": cfg.mix, "dist": cfg.dist,
		"value_size": cfg.valueSize, "seed": cfg.seed, "concurrency": cfg.concurrency,
	}, snap)
}
