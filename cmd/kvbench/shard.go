// Shard mode: drive the workload across a hash-partitioned fleet
// (internal/shard) — N engine+TC instances, each its own fault domain —
// and report the fleet-level cost roll-up: per-shard CostSnapshots folded
// into one ops-weighted $/op. With -migrate a live shard migration runs
// at the midpoint while the load continues, exercising the fence/drain/
// cutover path under real traffic.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"costperf/internal/core"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/shard"
	"costperf/internal/workload"
)

// shardModeConfig drives -shards N [-migrate] [-resize] [-rebalance].
type shardModeConfig struct {
	shards         int
	migrate        bool
	resize         bool
	rebalance      bool
	keys           uint64
	ops, valueSize int
	mix, dist      string
	seed           int64
	concurrency    int
	benchOut       string
}

// shardBenchSnapshot is the persisted BENCH_shard.json results block.
type shardBenchSnapshot struct {
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`

	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`

	// Router-level cutover accounting.
	MovedRetries    int64 `json:"moved_retries"`
	CutoverTimeouts int64 `json:"cutover_timeouts"`
	PartialScans    int64 `json:"partial_scans"`
	Fences          int64 `json:"fences"`
	Migrations      int64 `json:"migrations"`
	Splits          int64 `json:"splits"`
	Merges          int64 `json:"merges"`

	// MapEpoch is the placement-map version after the run: 0 means the
	// fleet never resized.
	MapEpoch uint64 `json:"map_epoch"`

	Migration *shardMigrationResult `json:"migration,omitempty"`
	Resize    *shardResizeResult    `json:"resize,omitempty"`
	Rebalance []shardRebalanceStep  `json:"rebalance,omitempty"`

	// Fleet-level $/op and five-minute-rule breakeven (both ops-weighted
	// across shards) plus attribution rows — the same live cost fields
	// the matrix and wire snapshots carry, so all BENCH files compare.
	FleetDollarPerMop float64        `json:"fleet_dollar_per_mop"`
	FleetBreakevenSec float64        `json:"fleet_breakeven_s"`
	FleetOps          int64          `json:"fleet_ops"`
	PerShard          []shardCostRow `json:"per_shard"`
}

type shardMigrationResult struct {
	Shard     int     `json:"shard"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ShipBytes int64   `json:"ship_bytes"`
	Resends   int64   `json:"resends"`
}

// shardResizeResult records the -resize arc: split the hottest shard at
// 1/3 of the run, merge the children back at 2/3, all under load.
type shardResizeResult struct {
	SplitSlot int     `json:"split_slot"`
	SplitLow  int     `json:"split_low"`
	SplitHigh int     `json:"split_high"`
	SplitMS   float64 `json:"split_ms"`
	MergedTo  int     `json:"merged_to"`
	MergeMS   float64 `json:"merge_ms"`
}

// shardRebalanceStep records one -rebalance Step that acted.
type shardRebalanceStep struct {
	AtOp   int     `json:"at_op"`
	Kind   string  `json:"kind"`
	Slot   int     `json:"slot"`
	With   int     `json:"with"`
	Share  float64 `json:"share"`
	Fair   float64 `json:"fair"`
	Reason string  `json:"reason"`
}

type shardCostRow struct {
	Store        string  `json:"store"`
	Ops          int64   `json:"ops"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	DeviceReads  int64   `json:"device_reads"`
	DeviceWrites int64   `json:"device_writes"`
	DollarPerMop float64 `json:"dollar_per_mop"`
	BreakevenSec float64 `json:"breakeven_s"`
}

// runShardMode partitions the keyspace across cfg.shards fault domains
// and drives the workload through the router with concurrent workers.
// Observability is always on here: the fleet $/op roll-up is the result.
func runShardMode(cfg shardModeConfig) {
	if cfg.concurrency <= 0 {
		cfg.concurrency = 4
	}
	reg := obs.NewRegistry()
	r, err := shard.New(shard.Config{
		Shards:   cfg.shards,
		Registry: reg,
		Seed:     cfg.seed,
	})
	check(err)
	defer r.Close()

	ctx := context.Background()
	fmt.Printf("loading %d keys across %d shards...\n", cfg.keys, cfg.shards)
	for i := uint64(0); i < cfg.keys; i++ {
		check(r.Put(ctx, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	reg.ResetAll() // measure the run, not the load

	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize,
		Mix: pickMix(cfg.mix), Chooser: pickChooser(cfg.dist, cfg.seed), Seed: cfg.seed,
	})
	check(err)
	ops := make([]workload.Op, 0, cfg.ops)
	for i := 0; i < cfg.ops; i++ {
		ops = append(ops, gen.Next())
	}

	fmt.Printf("running %d ops (%s / %s) over %d shards with %d workers",
		len(ops), cfg.mix, cfg.dist, cfg.shards, cfg.concurrency)
	if cfg.migrate {
		fmt.Print(", live migration at midpoint")
	}
	if cfg.resize {
		fmt.Print(", split at 1/3 + merge at 2/3")
	}
	if cfg.rebalance {
		fmt.Print(", cost-share rebalancer stepping at 1/3 and 2/3")
	}
	fmt.Println("...")

	var (
		completed, failed metrics.Counter
		opCh              = make(chan workload.Op)
		wg                sync.WaitGroup
	)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range opCh {
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = r.Get(ctx, op.Key)
				case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
					err = r.Put(ctx, op.Key, op.Value)
				case workload.OpScan:
					err = r.Scan(ctx, op.Key, op.ScanLen, func(_, _ []byte) bool { return true })
					// A partial scan still delivered the surviving shards'
					// data; count it completed, the router metered it.
					if errors.Is(err, shard.ErrPartialScan) {
						err = nil
					}
				case workload.OpDelete:
					err = r.Delete(ctx, op.Key)
				}
				if err == nil {
					completed.Inc()
				} else {
					failed.Inc()
				}
			}
		}()
	}

	var reb *shard.Rebalancer
	if cfg.rebalance {
		var err error
		reb, err = r.NewRebalancer(shard.RebalanceConfig{Base: core.PaperCosts()})
		check(err)
		// Seed the spend window: the first real Step sees the run's
		// traffic, not the load phase (the registry was just reset).
		_, err = reb.Step(ctx)
		check(err)
	}

	var (
		migRes   *shardMigrationResult
		resRes   *shardResizeResult
		rebSteps []shardRebalanceStep
	)
	stepRebalancer := func(atOp int) {
		act, err := reb.Step(ctx)
		check(err)
		if act == nil {
			fmt.Printf("  rebalancer at op %d: inside the band, no action\n", atOp)
			return
		}
		fmt.Printf("  rebalancer at op %d: %s\n", atOp, act.Reason)
		rebSteps = append(rebSteps, shardRebalanceStep{
			AtOp: atOp, Kind: act.Kind, Slot: act.Slot, With: act.With,
			Share: act.Share, Fair: act.Fair, Reason: act.Reason,
		})
	}
	send := func(lo, hi int) {
		for _, op := range ops[lo:hi] {
			opCh <- op
		}
	}
	start := time.Now()
	third, half, twoThird := len(ops)/3, len(ops)/2, 2*len(ops)/3

	send(0, third)
	if cfg.resize {
		// Split the shard that carried the most traffic so far.
		hot, hotOps := -1, int64(-1)
		m := r.Map()
		for i, s := range r.LiveSnapshots() {
			if s.Ops > hotOps {
				hot, hotOps = m.Entries[i].Slot, s.Ops
			}
		}
		fmt.Printf("  splitting hottest shard %d under load...\n", hot)
		s, err := r.Split(shard.SplitConfig{Shard: hot})
		check(err)
		t0 := time.Now()
		check(s.Run(ctx))
		low, high := s.Slots()
		resRes = &shardResizeResult{
			SplitSlot: hot, SplitLow: low, SplitHigh: high,
			SplitMS: float64(time.Since(t0).Microseconds()) / 1000,
		}
		fmt.Printf("  split done in %.1fms (children %d, %d)\n", resRes.SplitMS, low, high)
	}
	if cfg.rebalance {
		stepRebalancer(third)
	}

	send(third, half)
	if cfg.migrate {
		// Pick a live slot off the current map: with -resize the original
		// slot numbers may already be retired.
		m := r.Map()
		idx := int(cfg.seed) % len(m.Entries)
		if idx < 0 {
			idx += len(m.Entries)
		}
		moving := m.Entries[idx].Slot
		fmt.Printf("  migrating shard %d under load...\n", moving)
		mg, err := r.Migrate(shard.MigrateConfig{Shard: moving})
		check(err)
		t0 := time.Now()
		check(mg.Run(ctx))
		migRes = &shardMigrationResult{
			Shard:     moving,
			ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
			ShipBytes: mg.Stats().BytesShipped.Value(),
			Resends:   mg.Stats().Resends.Value(),
		}
		fmt.Printf("  cutover done in %.1fms (%dB shipped)\n", migRes.ElapsedMS, migRes.ShipBytes)
	}

	send(half, twoThird)
	if cfg.resize {
		fmt.Printf("  merging shards %d+%d back under load...\n", resRes.SplitLow, resRes.SplitHigh)
		mg, err := r.Merge(shard.MergeConfig{Left: resRes.SplitLow, Right: resRes.SplitHigh})
		check(err)
		t0 := time.Now()
		check(mg.Run(ctx))
		resRes.MergedTo = mg.Slot()
		resRes.MergeMS = float64(time.Since(t0).Microseconds()) / 1000
		fmt.Printf("  merge done in %.1fms (slot %d)\n", resRes.MergeMS, resRes.MergedTo)
	}
	if cfg.rebalance {
		stepRebalancer(twoThird)
	}

	send(twoThird, len(ops))
	close(opCh)
	wg.Wait()
	elapsed := time.Since(start)

	base := core.PaperCosts()
	snaps := r.Snapshots()
	fleet := shard.Rollup(snaps, base)

	rs := r.Stats()
	snap := shardBenchSnapshot{
		Shards: cfg.shards, Ops: len(ops),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		OpsPerSec: float64(len(ops)) / elapsed.Seconds(),
		Completed: completed.Value(), Errors: failed.Value(),
		MovedRetries:    rs.MovedRetries.Value(),
		CutoverTimeouts: rs.CutoverTimeouts.Value(),
		PartialScans:    rs.PartialScans.Value(),
		Fences:          rs.Fences.Value(),
		Migrations:      rs.Migrations.Value(),
		Splits:          rs.Splits.Value(),
		Merges:          rs.Merges.Value(),
		MapEpoch:        r.MapEpoch(),
		Migration:       migRes,
		Resize:          resRes,
		Rebalance:       rebSteps,

		FleetDollarPerMop: 1e6 * fleet.DollarPerOp,
		FleetBreakevenSec: fleet.BreakevenSec,
		FleetOps:          fleet.Ops,
	}
	for _, s := range fleet.PerShard {
		row := shardCostRow{
			Store: s.Store, Ops: s.Ops, Errors: s.Errors, Shed: s.Shed,
			DeviceReads: s.DeviceReads, DeviceWrites: s.DeviceWrites,
		}
		// Per-op ratios are undefined for a zero-ops shard (a freshly
		// split child that saw no traffic); leave its row's rates zero.
		if s.Ops > 0 {
			row.DollarPerMop = 1e6 * s.DollarPerOp(base)
			row.BreakevenSec = s.BreakevenInterval(base)
		}
		snap.PerShard = append(snap.PerShard, row)
	}

	fmt.Println("\nresults (shard mode, wall-clock):")
	fmt.Printf("  elapsed: %v  (%.0f ops/sec)\n", elapsed.Round(time.Microsecond), snap.OpsPerSec)
	fmt.Printf("  completed=%d errors=%d\n", snap.Completed, snap.Errors)
	fmt.Printf("  router: moved-retries=%d cutover-timeouts=%d partial-scans=%d fences=%d migrations=%d splits=%d merges=%d epoch=%d\n",
		snap.MovedRetries, snap.CutoverTimeouts, snap.PartialScans, snap.Fences,
		snap.Migrations, snap.Splits, snap.Merges, snap.MapEpoch)
	fmt.Println("\nfleet cost roll-up (measured per-shard model inputs, paper rates):")
	fmt.Print(fleet.Table(base))

	writeBenchSnapshot(benchOutPath(cfg.benchOut, "shard"), "shard", "tc", map[string]any{
		"shards": cfg.shards, "migrate": cfg.migrate,
		"resize": cfg.resize, "rebalance": cfg.rebalance,
		"keys": cfg.keys, "ops": cfg.ops, "mix": cfg.mix, "dist": cfg.dist,
		"value_size": cfg.valueSize, "seed": cfg.seed, "concurrency": cfg.concurrency,
	}, snap)
}
