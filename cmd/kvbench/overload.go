// Overload mode: a three-phase flash-crowd driven through the adaptive
// engine (internal/overload), persisting BENCH_overload.json. The phases
// are baseline -> storm -> recovery: the storm multiplies the client
// worker count well past the store's capacity and shifts the hot set,
// the recovery phase returns to the baseline shape. The persisted result
// records per-phase throughput, latency, and the limiter's shed-by-class
// breakdown, plus the re-convergence ratio (recovery throughput over
// baseline throughput) — the number the adaptive limiter exists to keep
// near 1.0 and a static limit lets collapse.
//
//	kvbench -overload
//	kvbench -overload -store lsm -ops 120000
//	kvbench -overload -overload-static      # fixed limit, for comparison
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"costperf/internal/core"
	"costperf/internal/engine"
	"costperf/internal/obs"
	"costperf/internal/overload"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// overloadModeConfig drives -overload.
type overloadModeConfig struct {
	store     string
	keys      uint64
	ops       int
	valueSize int
	pool      int
	seed      int64
	limit     int // engine MaxConcurrent (adaptive: the starting limit)
	queue     int
	static    bool          // run the fixed-limit engine instead of the adaptive one
	service   time.Duration // paced-store per-op service time (0 = raw store)
	benchOut  string
}

// overloadStormFactor multiplies the baseline worker count during the
// storm phase: the flash crowd is more clients, not just hotter keys.
// It is sized so the storm's offered concurrency clears the adaptive
// limit's upper clamp (4x the starting limit) plus the full wait queue —
// otherwise a fast store absorbs the "storm" without ever shedding.
const overloadStormFactor = 24

// overloadServiceCap is the paced store's internal parallelism: how many
// operations it can service at once before they queue inside it and the
// in-store latency the limiter measures starts inflating.
const overloadServiceCap = 4

// pacedStore overlays a wall-clock service-time model on a store: each
// op occupies one of overloadServiceCap slots for service duration, ops
// beyond that queue inside the store. The repo's ssd sim charges
// deterministic *cost units*, not wall time, so an in-process bench on a
// small machine can never make a raw store's latency inflate under
// offered load — but latency inflation is the only signal an adaptive
// limiter has. The paced store gives the storm something real to melt:
// in-store latency grows with concurrency past the cap, the gradient
// backs the limit down to the store's actual capacity, and the brownout
// ladder sheds the overflow by class.
type pacedStore struct {
	engine.Store
	slots   chan struct{}
	service time.Duration
}

func newPacedStore(inner engine.Store, service time.Duration) *pacedStore {
	return &pacedStore{Store: inner, slots: make(chan struct{}, overloadServiceCap), service: service}
}

func (p *pacedStore) pace() {
	p.slots <- struct{}{}
	time.Sleep(p.service)
	<-p.slots
}

func (p *pacedStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	p.pace()
	return p.Store.Get(ctx, key)
}

func (p *pacedStore) Put(ctx context.Context, key, val []byte) error {
	p.pace()
	return p.Store.Put(ctx, key, val)
}

func (p *pacedStore) Delete(ctx context.Context, key []byte) error {
	p.pace()
	return p.Store.Delete(ctx, key)
}

func (p *pacedStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	p.pace()
	return p.Store.Scan(ctx, start, limit, fn)
}

// overloadScenario is the three-phase flash crowd. It lives here, not in
// workload's built-in matrix, so BENCH_matrix.json rows (which benchdiff
// gates) are untouched by overload-mode evolution. Classed tenants ride
// every phase so the shed breakdown can show the brownout ladder working:
// reports (scans) shed first, batch (low) next, the crowd (normal) after,
// and oltp (high) essentially never.
func overloadScenario() workload.Scenario {
	zipf := workload.DistSpec{Kind: "zipfian", Theta: 0.99}
	uni := workload.DistSpec{Kind: "uniform"}
	crowd := workload.DistSpec{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95, RotateFrac: 0.33}
	scanMix := workload.Mix{Read: 0.4, Scan: 0.6}
	steady := []workload.Tenant{
		{Name: "oltp", Weight: 0.65, Mix: workload.ReadMostly, Dist: zipf, Class: "high"},
		{Name: "batch", Weight: 0.2, Mix: workload.BlindWriteHeavy, Dist: uni, Class: "low"},
		{Name: "reports", Weight: 0.15, Mix: scanMix, Dist: uni, Class: "scan"},
	}
	return workload.Scenario{
		Name: "overload-flash-crowd",
		Desc: "baseline -> flash-crowd storm (8x workers, rotated hot set) -> recovery, classed tenants throughout",
		Phases: []workload.Phase{
			{Name: "baseline", Frac: 0.3, Tenants: steady},
			{Name: "storm", Frac: 0.4, Tenants: []workload.Tenant{
				{Name: "crowd", Weight: 0.7, Mix: workload.ReadMostly, Dist: crowd, Class: "normal"},
				{Name: "oltp", Weight: 0.15, Mix: workload.ReadMostly, Dist: zipf, Class: "high"},
				{Name: "batch", Weight: 0.1, Mix: workload.BlindWriteHeavy, Dist: uni, Class: "low"},
				{Name: "reports", Weight: 0.05, Mix: scanMix, Dist: uni, Class: "scan"},
			}},
			{Name: "recovery", Frac: 0.3, Tenants: steady},
		},
	}
}

// taggedOp is one op plus its tenant's admission class.
type taggedOp struct {
	op     workload.Op
	class  overload.Class
	tagged bool // false: untagged, engine per-op default applies
}

// overloadPhaseResult is one phase's persisted measurement.
type overloadPhaseResult struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`

	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`

	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Timeouts  int64 `json:"timeouts"`
	Errors    int64 `json:"errors"`

	// Per-class shed deltas over this phase (the brownout ladder) and
	// the live concurrency limit where the phase left it.
	ShedScan   int64 `json:"shed_scan"`
	ShedLow    int64 `json:"shed_low"`
	ShedNormal int64 `json:"shed_normal"`
	ShedHigh   int64 `json:"shed_high"`
	LimitEnd   int64 `json:"limit_end"`
}

// overloadBenchResults is the persisted results block of BENCH_overload.json.
type overloadBenchResults struct {
	ScenarioDef workload.Scenario     `json:"scenario_def"`
	Adaptive    bool                  `json:"adaptive"`
	Phases      []overloadPhaseResult `json:"phases"`

	// Reconvergence is recovery throughput over baseline throughput:
	// ~1.0 means the limiter un-learned the storm; well under 1.0 is the
	// metastable failure signature.
	Reconvergence float64 `json:"reconvergence"`
	LimitChanges  int64   `json:"limit_changes"`

	// Cost is the store tracer's priced snapshot; Admission the engine
	// tracer's, which carries the folded limiter fields.
	Cost      obs.SnapshotExport `json:"cost"`
	Admission obs.SnapshotExport `json:"admission"`
}

// runOverloadMode builds the store behind an adaptive (or, with
// -overload-static, fixed-limit) engine and drives the flash crowd.
func runOverloadMode(cfg overloadModeConfig) {
	sc := overloadScenario()
	phases, err := overloadPhaseOps(sc, workload.ScenarioConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize, Ops: cfg.ops, Seed: cfg.seed,
	})
	check(err)

	mode := "adaptive"
	if cfg.static {
		mode = "static"
	}
	fmt.Printf("overload: %s, store %s, %s limiter (start %d), service %v x%d, %d keys / %d ops, seed %d\n",
		sc.Name, cfg.store, mode, cfg.limit, cfg.service, overloadServiceCap, cfg.keys, cfg.ops, cfg.seed)

	dev := ssd.New(ssd.SamsungSSD)
	reg := obs.NewRegistry()
	tr := reg.Tracer(cfg.store)
	dev.SetObserver(tr)
	es := buildEngineStore(cfg.store, cfg.pool, dev, reg, tr)

	bg := context.Background()
	for i := uint64(0); i < cfg.keys; i++ {
		check(es.Put(bg, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	dev.Stats().Reset()
	reg.ResetAll() // measure the run, not the load

	// The load above goes through the raw store; only the measured run
	// pays the service-time model.
	drive := es
	if cfg.service > 0 {
		drive = newPacedStore(es, cfg.service)
	}

	engTr := regTracer(reg, "engine")
	eng, err := engine.New(engine.Config{
		Store:         drive,
		MaxConcurrent: cfg.limit,
		MaxQueue:      cfg.queue,
		Adaptive:      !cfg.static,
		Obs:           engTr,
	})
	check(err)

	results := overloadBenchResults{ScenarioDef: sc, Adaptive: !cfg.static}
	lim := eng.Limiter().Stats()
	for i, ph := range phases {
		workers := cfg.limit / 2
		if workers < 1 {
			workers = 1
		}
		if sc.Phases[i].Name == "storm" {
			workers *= overloadStormFactor
		}
		shed0 := [4]int64{lim.ShedScan.Value(), lim.ShedLow.Value(), lim.ShedNormal.Value(), lim.ShedHigh.Value()}
		rs := driveClassed(eng, ph, workers)
		lat := rs.latency.Snapshot()
		pr := overloadPhaseResult{
			Name: sc.Phases[i].Name, Workers: workers, Ops: len(ph),
			ElapsedMS: float64(rs.elapsed.Microseconds()) / 1000,
			OpsPerSec: float64(len(ph)) / rs.elapsed.Seconds(),
			P50Micros: lat.P50, P95Micros: lat.P95, P99Micros: lat.P99,
			Completed: rs.completed.Value(), Shed: rs.shed.Value(),
			Timeouts: rs.timeouts.Value(), Errors: rs.fails.Value(),
			ShedScan:   lim.ShedScan.Value() - shed0[0],
			ShedLow:    lim.ShedLow.Value() - shed0[1],
			ShedNormal: lim.ShedNormal.Value() - shed0[2],
			ShedHigh:   lim.ShedHigh.Value() - shed0[3],
			LimitEnd:   lim.Limit.Value(),
		}
		results.Phases = append(results.Phases, pr)
		fmt.Printf("  %-9s w=%-3d %9.0f ops/s  p99=%7.0fus  shed=%-5d [s/l/n/h]=%d/%d/%d/%d  limit=%d\n",
			pr.Name, pr.Workers, pr.OpsPerSec, pr.P99Micros, pr.Shed,
			pr.ShedScan, pr.ShedLow, pr.ShedNormal, pr.ShedHigh, pr.LimitEnd)
	}
	storeSnap := tr.Snapshot()
	engSnap := engTr.Snapshot()
	check(eng.Close())

	base, recov := results.Phases[0], results.Phases[len(results.Phases)-1]
	if base.OpsPerSec > 0 {
		results.Reconvergence = recov.OpsPerSec / base.OpsPerSec
	}
	results.LimitChanges = lim.LimitUps.Value() + lim.LimitDowns.Value()
	results.Cost = storeSnap.Export(core.PaperCosts())
	results.Admission = engSnap.Export(core.PaperCosts())

	fmt.Printf("reconvergence: %.2f (recovery %0.f ops/s / baseline %0.f ops/s), limit adjustments: %d\n",
		results.Reconvergence, recov.OpsPerSec, base.OpsPerSec, results.LimitChanges)

	writeBenchSnapshot(benchOutPath(cfg.benchOut, "overload"), "overload", cfg.store, map[string]any{
		"scenario": sc.Name, "adaptive": !cfg.static, "limit": cfg.limit,
		"queue": cfg.queue, "storm_factor": overloadStormFactor,
		"service_us": cfg.service.Microseconds(), "service_cap": overloadServiceCap,
		"keys": cfg.keys, "ops": cfg.ops, "value_size": cfg.valueSize,
		"pool": cfg.pool, "seed": cfg.seed,
	}, results)
}

// overloadPhaseOps materialises the scenario's tagged op stream split per
// phase, using the generator's own allotment math (frac share, rounding
// remainder to the tail) so the split matches the stream exactly.
func overloadPhaseOps(sc workload.Scenario, cfg workload.ScenarioConfig) ([][]taggedOp, error) {
	gen, err := workload.NewScenarioGen(sc, cfg)
	if err != nil {
		return nil, err
	}
	var totalFrac float64
	for _, p := range sc.Phases {
		totalFrac += p.Frac
	}
	out := make([][]taggedOp, len(sc.Phases))
	allotted := 0
	for i, p := range sc.Phases {
		n := int(float64(cfg.Ops) * p.Frac / totalFrac)
		if i == len(sc.Phases)-1 {
			n = cfg.Ops - allotted
		}
		allotted += n
		out[i] = make([]taggedOp, 0, n)
		for j := 0; j < n; j++ {
			op, class, ok := gen.NextTagged()
			if !ok {
				return nil, fmt.Errorf("kvbench: scenario stream ended early (phase %s op %d)", p.Name, j)
			}
			to := taggedOp{op: op}
			if class != "" {
				if c, ok := overload.ParseClass(class); ok {
					to.class, to.tagged = c, true
				}
			}
			out[i] = append(out[i], to)
		}
	}
	return out, nil
}

// driveClassed is driveEngine with two overload-specific changes: tagged
// ops carry their tenant's class in the context (untagged ops take the
// engine's per-op default), and the op stream is pre-split round-robin
// across workers instead of fed through a shared channel. The shared
// channel serializes dispatch — one handoff per op — which caps offered
// concurrency far below the worker count for fast stores; pre-split
// slices let every storm worker hammer admission simultaneously, which
// is the whole point of the storm.
func driveClassed(eng *engine.Engine, ops []taggedOp, workers int) *engineRunStats {
	rs := &engineRunStats{}
	bg := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += workers {
				to := ops[i]
				ctx := bg
				if to.tagged {
					ctx = overload.WithClass(bg, to.class)
				}
				t0 := time.Now()
				var err error
				switch to.op.Kind {
				case workload.OpRead:
					_, _, err = eng.Get(ctx, to.op.Key)
				case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
					err = eng.Put(ctx, to.op.Key, to.op.Value)
				case workload.OpScan:
					err = eng.Scan(ctx, to.op.Key, to.op.ScanLen, func(_, _ []byte) bool { return true })
				case workload.OpDelete:
					err = eng.Delete(ctx, to.op.Key)
				}
				rs.latency.Observe(float64(time.Since(t0).Microseconds()))
				switch {
				case err == nil:
					rs.completed.Inc()
				case errors.Is(err, engine.ErrOverload):
					rs.shed.Inc()
				case errors.Is(err, context.DeadlineExceeded):
					rs.timeouts.Inc()
				default:
					rs.fails.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	rs.elapsed = time.Since(start)
	return rs
}
