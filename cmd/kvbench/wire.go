// Wire mode: serve a store over the binary protocol (-serve) and drive it
// with a multi-connection load generator (-connect), emitting a
// BENCH_wire.json snapshot so the perf trajectory of the connection path
// is persisted per PR rather than anecdotal.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"costperf/internal/core"
	"costperf/internal/engine"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/ssd"
	"costperf/internal/wire"
	"costperf/internal/workload"
)

// wireModeConfig carries the flags both wire modes share.
type wireModeConfig struct {
	store     string
	keys      uint64
	ops       int
	mix       string
	dist      string
	valueSize int
	pool      int
	seed      int64

	addr     string // -serve or -connect target
	conns    int    // client connections
	pipeline int    // per-connection in-flight depth
	benchOut string // JSON snapshot path

	concurrency int // engine MaxConcurrent (0 = default)
	queue       int // engine MaxQueue (0 = default)
	deadline    time.Duration
}

// newWireEngine builds the chosen store behind the engine front-end, the
// backend both wire modes serve. The device runs clean: wire mode measures
// the connection path, not injected device faults. The store is traced
// (internal/obs) so the persisted snapshot carries the live $/op and
// breakeven the matrix snapshots get — one comparable schema.
func newWireEngine(cfg wireModeConfig) (*engine.Engine, *obs.Registry) {
	dev := ssd.New(ssd.Config{Name: "dev", MaxIOPS: 1e6, LatencySec: 20e-6})
	reg := obs.NewRegistry()
	tr := reg.Tracer(cfg.store)
	dev.SetObserver(tr)
	es := buildEngineStore(cfg.store, cfg.pool, dev, reg, tr)

	fmt.Printf("loading %d keys into %s...\n", cfg.keys, cfg.store)
	bg := context.Background()
	for i := uint64(0); i < cfg.keys; i++ {
		check(es.Put(bg, workload.Key(i), workload.ValueFor(i, cfg.valueSize)))
	}
	dev.Stats().Reset()
	reg.ResetAll() // measure the served run, not the load

	eng, err := engine.New(engine.Config{
		Store:          es,
		MaxConcurrent:  cfg.concurrency,
		MaxQueue:       cfg.queue,
		DefaultTimeout: cfg.deadline,
		Obs:            regTracer(reg, "engine"),
	})
	check(err)
	return eng, reg
}

// runWireServe listens on cfg.addr and serves the store until SIGINT/TERM,
// then drains gracefully: in-flight requests finish and ack before the
// connections close.
func runWireServe(cfg wireModeConfig) {
	eng, _ := newWireEngine(cfg)
	srv, err := wire.NewServer(wire.ServerConfig{Backend: eng, MaxInFlight: cfg.pipeline})
	check(err)
	l, err := net.Listen("tcp", cfg.addr)
	check(err)
	fmt.Printf("serving %s on %s (pipeline window %d); SIGINT drains\n",
		cfg.store, l.Addr(), cfg.pipeline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Printf("drain: %v\n", err)
		}
	}()

	check(srv.Serve(l))
	fmt.Printf("server: %s\n", srv.Stats().String())
	check(srv.Close())
	check(eng.Close())
}

// wireBenchSnapshot is the persisted BENCH_wire.json schema.
type wireBenchSnapshot struct {
	Store     string  `json:"store"`
	Conns     int     `json:"conns"`
	Pipeline  int     `json:"pipeline"`
	Mix       string  `json:"mix"`
	Dist      string  `json:"dist"`
	Keys      uint64  `json:"keys"`
	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`

	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`

	Retries         int64 `json:"retries"`
	Hedges          int64 `json:"hedges"`
	Reconnects      int64 `json:"reconnects"`
	AttemptTimeouts int64 `json:"attempt_timeouts"`

	Server *wireServerSnapshot `json:"server,omitempty"`

	// Cost is the backing store's traced CostSnapshot priced at paper
	// rates — present when the server ran in-process (-connect self),
	// absent against a remote server whose device we cannot observe.
	// Shared with the matrix and shard snapshots (internal/obs).
	Cost *obs.SnapshotExport `json:"cost,omitempty"`
}

// wireServerSnapshot is attached when the server runs in-process
// (-connect self); against a remote server only client counters persist.
type wireServerSnapshot struct {
	Requests     int64 `json:"requests"`
	Responses    int64 `json:"responses"`
	DedupHits    int64 `json:"dedup_hits"`
	Evicted      int64 `json:"evicted"`
	BadFrames    int64 `json:"bad_frames"`
	InFlightPeak int64 `json:"in_flight_peak"`
}

// runWireLoad drives the workload through cfg.conns wire clients, each
// with cfg.pipeline concurrent requests in flight. "-connect self" spins
// up an in-process server on a loopback listener first, so one command
// exercises the full path.
func runWireLoad(cfg wireModeConfig) {
	addr := cfg.addr
	var srv *wire.Server
	var eng *engine.Engine
	var reg *obs.Registry
	if addr == "self" {
		eng, reg = newWireEngine(cfg)
		var err error
		srv, err = wire.NewServer(wire.ServerConfig{Backend: eng, MaxInFlight: cfg.pipeline})
		check(err)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go srv.Serve(l)
		addr = l.Addr().String()
		fmt.Printf("in-process server on %s\n", addr)
	}

	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Keys: cfg.keys, ValueSize: cfg.valueSize,
		Mix: pickMix(cfg.mix), Chooser: pickChooser(cfg.dist, cfg.seed), Seed: cfg.seed,
	})
	check(err)
	ops := make([]workload.Op, 0, cfg.ops)
	for i := 0; i < cfg.ops; i++ {
		ops = append(ops, gen.Next())
	}

	clients := make([]*wire.Client, cfg.conns)
	for i := range clients {
		clients[i], err = wire.NewClient(wire.ClientConfig{
			Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Seed:        cfg.seed + int64(i),
			MaxInFlight: cfg.pipeline,
		})
		check(err)
	}

	fmt.Printf("running %d ops (%s / %s) over %d conns x %d pipeline...\n",
		len(ops), cfg.mix, cfg.dist, cfg.conns, cfg.pipeline)

	var (
		latency                 metrics.Histogram // client-observed, microseconds
		completed, shed, failed metrics.Counter
		opCh                    = make(chan workload.Op)
		wg                      sync.WaitGroup
	)
	bg := context.Background()
	start := time.Now()
	for _, cl := range clients {
		// cfg.pipeline workers per connection keep its in-flight window full.
		for w := 0; w < cfg.pipeline; w++ {
			wg.Add(1)
			go func(cl *wire.Client) {
				defer wg.Done()
				for op := range opCh {
					t0 := time.Now()
					var err error
					switch op.Kind {
					case workload.OpRead:
						_, _, err = cl.Get(bg, op.Key)
					case workload.OpUpdate, workload.OpInsert, workload.OpBlindWrite:
						err = cl.Put(bg, op.Key, op.Value)
					case workload.OpScan:
						err = cl.Scan(bg, op.Key, op.ScanLen, func(_, _ []byte) bool { return true })
					case workload.OpDelete:
						err = cl.Delete(bg, op.Key)
					}
					latency.Observe(float64(time.Since(t0).Microseconds()))
					switch {
					case err == nil:
						completed.Inc()
					case errors.Is(err, engine.ErrOverload):
						shed.Inc()
					default:
						failed.Inc()
					}
				}
			}(cl)
		}
	}
	for _, op := range ops {
		opCh <- op
	}
	close(opCh)
	wg.Wait()
	elapsed := time.Since(start)

	snap := wireBenchSnapshot{
		Store: cfg.store, Conns: cfg.conns, Pipeline: cfg.pipeline,
		Mix: cfg.mix, Dist: cfg.dist, Keys: cfg.keys, Ops: len(ops),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		OpsPerSec: float64(len(ops)) / elapsed.Seconds(),
		Completed: completed.Value(), Shed: shed.Value(), Errors: failed.Value(),
	}
	lat := latency.Snapshot()
	snap.P50Micros, snap.P95Micros, snap.P99Micros, snap.MaxMicros = lat.P50, lat.P95, lat.P99, lat.Max
	for _, cl := range clients {
		st := cl.Stats()
		snap.Retries += st.Retries.Value()
		snap.Hedges += st.Hedges.Value()
		snap.Reconnects += st.Reconnects.Value()
		snap.AttemptTimeouts += st.AttemptTimeouts.Value()
		check(cl.Close())
	}
	if srv != nil {
		st := srv.Stats()
		snap.Server = &wireServerSnapshot{
			Requests: st.Requests.Value(), Responses: st.Responses.Value(),
			DedupHits: st.DedupHits.Value(), Evicted: st.Evicted.Value(),
			BadFrames: st.BadFrames.Value(), InFlightPeak: st.InFlightPeak.Value(),
		}
		cost := reg.Tracer(cfg.store).Snapshot().Export(core.PaperCosts())
		snap.Cost = &cost
		check(srv.Close())
		check(eng.Close())
	}

	fmt.Println("\nresults (wire mode, wall-clock):")
	fmt.Printf("  elapsed: %v  (%.0f ops/sec)\n", elapsed.Round(time.Microsecond), snap.OpsPerSec)
	fmt.Printf("  completed=%d shed=%d errors=%d\n", snap.Completed, snap.Shed, snap.Errors)
	fmt.Printf("  latency (us): p50=%.0f p95=%.0f p99=%.0f max=%.0f\n", lat.P50, lat.P95, lat.P99, lat.Max)
	fmt.Printf("  client: retries=%d hedges=%d reconnects=%d attempt-timeouts=%d\n",
		snap.Retries, snap.Hedges, snap.Reconnects, snap.AttemptTimeouts)
	if snap.Server != nil {
		fmt.Printf("  server: req=%d resp=%d dedup=%d evicted=%d bad=%d peak=%d\n",
			snap.Server.Requests, snap.Server.Responses, snap.Server.DedupHits,
			snap.Server.Evicted, snap.Server.BadFrames, snap.Server.InFlightPeak)
	}
	if snap.Cost != nil {
		fmt.Printf("  cost: $/Mop=%.3f breakeven=%.0fs (F=%.4f R=%.1f)\n",
			snap.Cost.DollarPerMop, snap.Cost.BreakevenSec, snap.Cost.F, snap.Cost.R)
	}

	writeBenchSnapshot(benchOutPath(cfg.benchOut, "wire"), "wire", cfg.store, map[string]any{
		"keys": cfg.keys, "ops": cfg.ops, "mix": cfg.mix, "dist": cfg.dist,
		"value_size": cfg.valueSize, "seed": cfg.seed,
		"conns": cfg.conns, "pipeline": cfg.pipeline,
	}, snap)
}
