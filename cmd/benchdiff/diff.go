// Comparable rows and the regression contract. A benchmark snapshot
// (any BENCH_*.json kvbench emits) flattens into rows of named metrics;
// Diff matches rows across two snapshots by key and holds the new file
// to the old one under per-metric-class thresholds. The logic lives here,
// separate from flag parsing, so the contract is unit-testable.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Row is one comparable unit of a snapshot: a matrix cell, or the single
// results block of a wire/shard run.
type Row struct {
	Key     string
	Metrics map[string]float64
}

// direction says which way a metric regresses.
type direction int

const (
	higherBetter direction = iota
	lowerBetter
)

// metricSpec classifies a metric for thresholding. Class names the
// threshold that governs it.
type metricSpec struct {
	dir   direction
	class string // "throughput" | "latency" | "cost" | "count"
}

// metricOrder fixes the report's column order; metricSpecs the contract.
var (
	metricOrder = []string{"ops_per_sec", "p99_us", "dollar_per_mop", "errors", "shed", "reconvergence"}
	metricSpecs = map[string]metricSpec{
		"ops_per_sec":    {higherBetter, "throughput"},
		"p99_us":         {lowerBetter, "latency"},
		"dollar_per_mop": {lowerBetter, "cost"},
		"errors":         {lowerBetter, "count"},
		"shed":           {lowerBetter, "count"},
		// reconvergence (overload summary rows): recovery throughput over
		// baseline throughput. Dropping it is a throughput regression.
		"reconvergence": {higherBetter, "throughput"},
	}
)

// Thresholds is the allowed regression per metric class. Fractions are
// relative to the old value; CountSlack is an absolute op count. A change
// of exactly the threshold passes — only strictly worse breaches.
type Thresholds struct {
	Throughput float64 // allowed fractional ops/sec drop
	Latency    float64 // allowed fractional p99 rise
	Cost       float64 // allowed fractional $/op rise
	CountSlack float64 // allowed absolute errors/shed rise
	// ShedFrac is the allowed fractional shed-count rise on overload rows
	// only (keys with the "overload/" prefix). Overload runs shed by
	// design — driving the limiter into brownout is the run's whole point
	// — and the absolute count scales with machine speed, so the zero
	// CountSlack that pins ordinary rows would make the overload snapshot
	// undiffable across hosts. The effective slack for such rows is
	// max(ShedFrac * old, minOverloadShedSlack); everything else keeps
	// the absolute CountSlack.
	ShedFrac float64
}

// minOverloadShedSlack is the absolute floor under ShedFrac: a tiny old
// shed count (say 3) must not pin the new run to ±1 op.
const minOverloadShedSlack = 10

// DefaultThresholds is the gate kvbench's CI matrix runs under.
func DefaultThresholds() Thresholds {
	return Thresholds{Throughput: 0.10, Latency: 0.25, Cost: 0.10, CountSlack: 0, ShedFrac: 0.25}
}

// Delta is one matched metric's comparison.
type Delta struct {
	Key, Metric string
	Old, New    float64
	Breach      bool
}

// Report is a full snapshot comparison.
type Report struct {
	Matched  []string // row keys present in both files
	Missing  []string // rows the old file has and the new one lost
	Added    []string // rows only the new file has
	Deltas   []Delta  // matched (row, metric) comparisons, report order
	Breaches int      // deltas beyond threshold
}

// relEps keeps float noise from turning an exactly-at-threshold change
// into a breach: (0.55-0.5)/0.5 lands a few ulps above 0.10.
const relEps = 1e-9

// breaches reports whether new is worse than old beyond the allowed
// threshold for the metric. Boundary contract: exactly-at-threshold
// passes; only strictly beyond breaches. A missing old baseline (old <= 0
// for relative metrics) never breaches — there is nothing to regress from.
// The row key participates only for the shed metric: overload rows get
// the relative ShedFrac tolerance instead of the absolute CountSlack.
func breaches(metric, key string, spec metricSpec, old, new float64, th Thresholds) bool {
	switch spec.class {
	case "throughput":
		return old > 0 && (old-new)/old > th.Throughput+relEps
	case "latency":
		return old > 0 && (new-old)/old > th.Latency+relEps
	case "cost":
		return old > 0 && (new-old)/old > th.Cost+relEps
	case "count":
		slack := th.CountSlack
		if metric == "shed" && strings.HasPrefix(key, "overload/") {
			if s := th.ShedFrac * old; s > slack {
				slack = s
			}
			if slack < minOverloadShedSlack {
				slack = minOverloadShedSlack
			}
		}
		return new-old > slack+relEps
	}
	return false
}

// Diff matches rows by key and compares every known metric present in
// both sides. Rows the new file dropped land in Missing (the scenario
// coverage contract); rows it added land in Added and are informational.
func Diff(old, new []Row, th Thresholds) Report {
	newByKey := make(map[string]Row, len(new))
	for _, r := range new {
		newByKey[r.Key] = r
	}
	oldKeys := make(map[string]bool, len(old))
	var rep Report
	for _, o := range old {
		oldKeys[o.Key] = true
		n, ok := newByKey[o.Key]
		if !ok {
			rep.Missing = append(rep.Missing, o.Key)
			continue
		}
		rep.Matched = append(rep.Matched, o.Key)
		for _, m := range metricOrder {
			ov, haveOld := o.Metrics[m]
			nv, haveNew := n.Metrics[m]
			if !haveOld || !haveNew {
				continue
			}
			d := Delta{Key: o.Key, Metric: m, Old: ov, New: nv,
				Breach: breaches(m, o.Key, metricSpecs[m], ov, nv, th)}
			if d.Breach {
				rep.Breaches++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for _, n := range new {
		if !oldKeys[n.Key] {
			rep.Added = append(rep.Added, n.Key)
		}
	}
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	return rep
}

// InjectRegression degrades every row's metrics by frac — throughput
// scaled down, latency/cost scaled up — in place. The CI gate uses it as
// a self-test: a diff of a snapshot against its own degraded copy must
// breach, proving the thresholds actually bite.
func InjectRegression(rows []Row, frac float64) {
	for _, r := range rows {
		for m, v := range r.Metrics {
			spec, ok := metricSpecs[m]
			if !ok {
				continue
			}
			if spec.dir == higherBetter {
				r.Metrics[m] = v * (1 - frac)
			} else if spec.class != "count" {
				r.Metrics[m] = v * (1 + frac)
			}
		}
	}
}

// snapshotFile is the shared BENCH_*.json envelope (cmd/kvbench/snapshot.go).
type snapshotFile struct {
	Meta struct {
		Mode         string `json:"mode"`
		Store        string `json:"store"`
		GitCommit    string `json:"git_commit"`
		TimestampUTC string `json:"timestamp_utc"`
	} `json:"meta"`
	Results json.RawMessage `json:"results"`
}

// LoadRows parses a benchmark snapshot into its meta header and
// comparable rows.
func LoadRows(path string) (snapshotFile, []Row, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return snapshotFile{}, nil, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(buf, &sf); err != nil {
		return snapshotFile{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	if sf.Results == nil {
		return snapshotFile{}, nil, fmt.Errorf("%s: no results block (not a BENCH_*.json snapshot?)", path)
	}
	rows, err := extractRows(sf)
	if err != nil {
		return snapshotFile{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return sf, rows, nil
}

// extractRows flattens the mode-specific results schema into rows.
func extractRows(sf snapshotFile) ([]Row, error) {
	if sf.Meta.Mode == "matrix" {
		var res struct {
			Cells []map[string]any `json:"cells"`
		}
		if err := json.Unmarshal(sf.Results, &res); err != nil {
			return nil, err
		}
		if len(res.Cells) == 0 {
			return nil, fmt.Errorf("matrix snapshot with no cells")
		}
		rows := make([]Row, 0, len(res.Cells))
		for _, c := range res.Cells {
			key, _ := c["key"].(string)
			if key == "" {
				return nil, fmt.Errorf("matrix cell without a key")
			}
			rows = append(rows, rowFromMap(key, c))
		}
		return rows, nil
	}
	if sf.Meta.Mode == "overload" {
		// One row per flash-crowd phase plus a summary row carrying the
		// re-convergence ratio. The "overload/" key prefix is load-bearing:
		// breaches() keys the relative shed tolerance off it.
		var res struct {
			Phases []map[string]any `json:"phases"`
		}
		if err := json.Unmarshal(sf.Results, &res); err != nil {
			return nil, err
		}
		if len(res.Phases) == 0 {
			return nil, fmt.Errorf("overload snapshot with no phases")
		}
		var m map[string]any
		if err := json.Unmarshal(sf.Results, &m); err != nil {
			return nil, err
		}
		rows := []Row{rowFromMap("overload/"+sf.Meta.Store, m)}
		for _, p := range res.Phases {
			name, _ := p["name"].(string)
			if name == "" {
				return nil, fmt.Errorf("overload phase without a name")
			}
			rows = append(rows, rowFromMap(fmt.Sprintf("overload/%s/%s", sf.Meta.Store, name), p))
		}
		return rows, nil
	}
	// wire/shard (and future single-result modes): one row keyed by
	// mode/store so cross-mode files never silently cross-match.
	var m map[string]any
	if err := json.Unmarshal(sf.Results, &m); err != nil {
		return nil, err
	}
	return []Row{rowFromMap(sf.Meta.Mode+"/"+sf.Meta.Store, m)}, nil
}

// rowFromMap pulls the known metrics out of one results object. The live
// cost fields come from the embedded obs cost block when present (matrix
// cells, wire snapshots) or the flat fleet fields (shard snapshots).
func rowFromMap(key string, m map[string]any) Row {
	met := make(map[string]float64)
	pick := func(src map[string]any, name, as string) {
		if v, ok := src[name].(float64); ok {
			met[as] = v
		}
	}
	pick(m, "ops_per_sec", "ops_per_sec")
	pick(m, "p99_us", "p99_us")
	pick(m, "errors", "errors")
	pick(m, "shed", "shed")
	pick(m, "reconvergence", "reconvergence")
	if c, ok := m["cost"].(map[string]any); ok {
		pick(c, "dollar_per_mop", "dollar_per_mop")
	} else {
		pick(m, "dollar_per_mop", "dollar_per_mop")
		pick(m, "fleet_dollar_per_mop", "dollar_per_mop")
	}
	return Row{Key: key, Metrics: met}
}
