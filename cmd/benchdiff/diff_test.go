package main

import (
	"os"
	"path/filepath"
	"testing"
)

func row(key string, metrics map[string]float64) Row {
	return Row{Key: key, Metrics: metrics}
}

func TestDiffMatchedMissingAdded(t *testing.T) {
	old := []Row{
		row("a/lsm/c8", map[string]float64{"ops_per_sec": 100}),
		row("b/lsm/c8", map[string]float64{"ops_per_sec": 100}),
		row("gone/lsm/c8", map[string]float64{"ops_per_sec": 100}),
	}
	new := []Row{
		row("a/lsm/c8", map[string]float64{"ops_per_sec": 100}),
		row("b/lsm/c8", map[string]float64{"ops_per_sec": 100}),
		row("fresh/lsm/c8", map[string]float64{"ops_per_sec": 100}),
	}
	rep := Diff(old, new, DefaultThresholds())
	if len(rep.Matched) != 2 {
		t.Errorf("Matched = %v, want 2 rows", rep.Matched)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "gone/lsm/c8" {
		t.Errorf("Missing = %v, want [gone/lsm/c8]", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "fresh/lsm/c8" {
		t.Errorf("Added = %v, want [fresh/lsm/c8]", rep.Added)
	}
	if rep.Breaches != 0 {
		t.Errorf("identical metrics produced %d breaches", rep.Breaches)
	}
}

// TestThresholdBoundary pins the contract: a change of exactly the
// threshold passes, one tick beyond breaches.
func TestThresholdBoundary(t *testing.T) {
	th := Thresholds{Throughput: 0.10, Latency: 0.25, Cost: 0.10, CountSlack: 2}
	cases := []struct {
		name   string
		metric string
		old    float64
		new    float64
		breach bool
	}{
		{"throughput exactly -10%", "ops_per_sec", 1000, 900, false},
		{"throughput just beyond", "ops_per_sec", 1000, 899, true},
		{"throughput improves", "ops_per_sec", 1000, 2000, false},
		{"throughput zero baseline", "ops_per_sec", 0, 0, false},
		{"latency exactly +25%", "p99_us", 100, 125, false},
		{"latency just beyond", "p99_us", 100, 126, true},
		{"latency improves", "p99_us", 100, 10, false},
		{"cost exactly +10%", "dollar_per_mop", 0.5, 0.55, false},
		{"cost well beyond", "dollar_per_mop", 0.5, 0.6, true},
		{"cost zero baseline never breaches", "dollar_per_mop", 0, 5, false},
		{"errors within slack", "errors", 0, 2, false},
		{"errors beyond slack", "errors", 0, 3, true},
		{"errors shrink", "errors", 5, 0, false},
		{"shed beyond slack", "shed", 1, 4, true},
	}
	for _, tc := range cases {
		rep := Diff(
			[]Row{row("k", map[string]float64{tc.metric: tc.old})},
			[]Row{row("k", map[string]float64{tc.metric: tc.new})},
			th)
		if got := rep.Breaches > 0; got != tc.breach {
			t.Errorf("%s: breach = %v, want %v (old=%v new=%v)", tc.name, got, tc.breach, tc.old, tc.new)
		}
	}
}

func TestDiffSkipsMetricsMissingOnEitherSide(t *testing.T) {
	rep := Diff(
		[]Row{row("k", map[string]float64{"ops_per_sec": 100, "p99_us": 50})},
		[]Row{row("k", map[string]float64{"ops_per_sec": 100})},
		DefaultThresholds())
	if len(rep.Deltas) != 1 || rep.Deltas[0].Metric != "ops_per_sec" {
		t.Fatalf("Deltas = %+v, want only ops_per_sec compared", rep.Deltas)
	}
}

func TestInjectRegression(t *testing.T) {
	rows := []Row{row("k", map[string]float64{
		"ops_per_sec": 1000, "p99_us": 100, "dollar_per_mop": 0.5,
		"errors": 4, "unknown_metric": 7,
	})}
	InjectRegression(rows, 0.5)
	m := rows[0].Metrics
	if m["ops_per_sec"] != 500 {
		t.Errorf("throughput not degraded: %v", m["ops_per_sec"])
	}
	if m["p99_us"] != 150 || m["dollar_per_mop"] != 0.75 {
		t.Errorf("latency/cost not inflated: p99=%v $/Mop=%v", m["p99_us"], m["dollar_per_mop"])
	}
	if m["errors"] != 4 {
		t.Errorf("count metric should be left alone, got %v", m["errors"])
	}
	if m["unknown_metric"] != 7 {
		t.Errorf("unknown metric should be left alone, got %v", m["unknown_metric"])
	}
	// The injected copy must actually fail the default gate.
	clean := []Row{row("k", map[string]float64{"ops_per_sec": 1000, "p99_us": 100, "dollar_per_mop": 0.5})}
	if rep := Diff(clean, rows[:1], DefaultThresholds()); rep.Breaches == 0 {
		t.Error("injected regression did not breach the default thresholds")
	}
}

const matrixJSON = `{
  "meta": {"mode": "matrix", "store": "masstree,lsm", "git_commit": "abc", "timestamp_utc": "2026-08-08T00:00:00Z"},
  "results": {
    "cells": [
      {"key": "hot-zipf/lsm/c8", "ops_per_sec": 1000, "p99_us": 80, "errors": 0, "shed": 2,
       "cost": {"dollar_per_mop": 0.4, "breakeven_s": 300}},
      {"key": "hot-zipf/masstree/c8", "ops_per_sec": 2000, "p99_us": 40, "errors": 0, "shed": 0,
       "cost": {"dollar_per_mop": 0.2, "breakeven_s": 500}}
    ]
  }
}`

const wireJSON = `{
  "meta": {"mode": "wire", "store": "masstree", "git_commit": "abc", "timestamp_utc": "2026-08-08T00:00:00Z"},
  "results": {"ops_per_sec": 5000, "p99_us": 90, "errors": 1,
              "cost": {"dollar_per_mop": 0.3}}
}`

const shardJSON = `{
  "meta": {"mode": "shard", "store": "bwtree", "git_commit": "abc", "timestamp_utc": "2026-08-08T00:00:00Z"},
  "results": {"ops_per_sec": 7000, "p99_us": 60, "fleet_dollar_per_mop": 0.9}
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRowsMatrix(t *testing.T) {
	sf, rows, err := LoadRows(writeTemp(t, "m.json", matrixJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Meta.Mode != "matrix" {
		t.Errorf("meta mode = %q", sf.Meta.Mode)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	r := rows[0]
	if r.Key != "hot-zipf/lsm/c8" {
		t.Errorf("key = %q", r.Key)
	}
	want := map[string]float64{"ops_per_sec": 1000, "p99_us": 80, "errors": 0, "shed": 2, "dollar_per_mop": 0.4}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestLoadRowsSingleResultModes(t *testing.T) {
	_, rows, err := LoadRows(writeTemp(t, "w.json", wireJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "wire/masstree" {
		t.Fatalf("wire rows = %+v, want one row keyed wire/masstree", rows)
	}
	if rows[0].Metrics["dollar_per_mop"] != 0.3 {
		t.Errorf("wire nested cost not picked up: %v", rows[0].Metrics)
	}

	_, rows, err = LoadRows(writeTemp(t, "s.json", shardJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "shard/bwtree" {
		t.Fatalf("shard rows = %+v, want one row keyed shard/bwtree", rows)
	}
	if rows[0].Metrics["dollar_per_mop"] != 0.9 {
		t.Errorf("shard fleet_dollar_per_mop not mapped: %v", rows[0].Metrics)
	}
}

func TestLoadRowsRejectsGarbage(t *testing.T) {
	if _, _, err := LoadRows(writeTemp(t, "bad.json", `{"not": "a snapshot"}`)); err == nil {
		t.Error("envelope without results accepted")
	}
	if _, _, err := LoadRows(writeTemp(t, "empty.json", `{"meta":{"mode":"matrix"},"results":{"cells":[]}}`)); err == nil {
		t.Error("matrix snapshot with no cells accepted")
	}
	if _, _, err := LoadRows(writeTemp(t, "nokey.json", `{"meta":{"mode":"matrix"},"results":{"cells":[{"ops_per_sec":1}]}}`)); err == nil {
		t.Error("matrix cell without key accepted")
	}
	if _, _, err := LoadRows(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("unreadable file accepted")
	}
}

// TestOverloadShedTolerance pins the overload-row shed contract: rows
// keyed under "overload/" breach only past max(ShedFrac*old, 10) while
// ordinary rows keep the absolute CountSlack.
func TestOverloadShedTolerance(t *testing.T) {
	th := Thresholds{Throughput: 0.10, Latency: 0.25, Cost: 0.10, CountSlack: 0, ShedFrac: 0.25}
	cases := []struct {
		name   string
		key    string
		old    float64
		new    float64
		breach bool
	}{
		{"overload within frac", "overload/bwtree/storm", 1000, 1250, false},
		{"overload just beyond frac", "overload/bwtree/storm", 1000, 1251, true},
		{"overload shrinks", "overload/bwtree/storm", 1000, 0, false},
		{"overload small old uses absolute floor", "overload/bwtree/storm", 3, 13, false},
		{"overload beyond absolute floor", "overload/bwtree/storm", 3, 14, true},
		{"overload zero old within floor", "overload/bwtree/baseline", 0, 10, false},
		{"overload zero old beyond floor", "overload/bwtree/baseline", 0, 11, true},
		{"matrix row keeps zero slack", "hot-zipf/lsm/c8", 1000, 1001, true},
		{"summary row gets the tolerance too", "overload/bwtree", 100, 120, false},
	}
	for _, tc := range cases {
		rep := Diff(
			[]Row{row(tc.key, map[string]float64{"shed": tc.old})},
			[]Row{row(tc.key, map[string]float64{"shed": tc.new})},
			th)
		if got := rep.Breaches > 0; got != tc.breach {
			t.Errorf("%s: breach = %v, want %v (old=%v new=%v)", tc.name, got, tc.breach, tc.old, tc.new)
		}
	}
	// Errors never get the relative tolerance, even on overload rows.
	rep := Diff(
		[]Row{row("overload/bwtree/storm", map[string]float64{"errors": 0})},
		[]Row{row("overload/bwtree/storm", map[string]float64{"errors": 1})},
		th)
	if rep.Breaches == 0 {
		t.Error("errors on an overload row should keep the absolute slack")
	}
}

// TestReconvergenceGate pins that the overload summary's re-convergence
// ratio is compared as a throughput-class metric.
func TestReconvergenceGate(t *testing.T) {
	th := DefaultThresholds()
	rep := Diff(
		[]Row{row("overload/bwtree", map[string]float64{"reconvergence": 0.95})},
		[]Row{row("overload/bwtree", map[string]float64{"reconvergence": 0.80})},
		th)
	if rep.Breaches == 0 {
		t.Error("a 16% reconvergence drop should breach the 10% throughput threshold")
	}
	rep = Diff(
		[]Row{row("overload/bwtree", map[string]float64{"reconvergence": 0.95})},
		[]Row{row("overload/bwtree", map[string]float64{"reconvergence": 0.90})},
		th)
	if rep.Breaches != 0 {
		t.Error("a 5% reconvergence drop should pass")
	}
}

const overloadJSON = `{
  "meta": {"mode": "overload", "store": "bwtree", "git_commit": "abc", "timestamp_utc": "2026-08-08T00:00:00Z"},
  "results": {
    "adaptive": true,
    "reconvergence": 0.95,
    "phases": [
      {"name": "baseline", "ops_per_sec": 3300, "p99_us": 4800, "shed": 0, "errors": 0},
      {"name": "storm", "ops_per_sec": 19000, "p99_us": 18000, "shed": 20220, "errors": 0},
      {"name": "recovery", "ops_per_sec": 3100, "p99_us": 11000, "shed": 0, "errors": 0}
    ],
    "cost": {"dollar_per_mop": 0.4}
  }
}`

func TestLoadRowsOverload(t *testing.T) {
	sf, rows, err := LoadRows(writeTemp(t, "o.json", overloadJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Meta.Mode != "overload" {
		t.Errorf("meta mode = %q", sf.Meta.Mode)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want summary + 3 phases", len(rows))
	}
	if rows[0].Key != "overload/bwtree" {
		t.Errorf("summary key = %q", rows[0].Key)
	}
	if rows[0].Metrics["reconvergence"] != 0.95 {
		t.Errorf("summary reconvergence = %v", rows[0].Metrics["reconvergence"])
	}
	if rows[0].Metrics["dollar_per_mop"] != 0.4 {
		t.Errorf("summary cost = %v", rows[0].Metrics["dollar_per_mop"])
	}
	storm := rows[2]
	if storm.Key != "overload/bwtree/storm" || storm.Metrics["shed"] != 20220 {
		t.Errorf("storm row = %+v", storm)
	}
	if _, _, err := LoadRows(writeTemp(t, "nophase.json",
		`{"meta":{"mode":"overload","store":"x"},"results":{"phases":[]}}`)); err == nil {
		t.Error("overload snapshot with no phases accepted")
	}
	if _, _, err := LoadRows(writeTemp(t, "noname.json",
		`{"meta":{"mode":"overload","store":"x"},"results":{"phases":[{"shed":1}]}}`)); err == nil {
		t.Error("overload phase without a name accepted")
	}
}
