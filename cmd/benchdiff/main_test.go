package main

import (
	"bytes"
	"strings"
	"testing"
)

// The exit-code contract (0 pass / 1 regression or coverage loss /
// 2 usage) is what scripts/check.sh's CHECK_MATRIX gate builds on; these
// tests drive run() exactly the way the shell does.

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunIdentityDiffPasses(t *testing.T) {
	p := writeTemp(t, "m.json", matrixJSON)
	code, out, _ := runDiff(t, p, p)
	if code != 0 {
		t.Fatalf("identity diff exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "2 rows compared, 0 regressions") {
		t.Errorf("summary line missing: %s", out)
	}
}

func TestRunInjectedRegressionFails(t *testing.T) {
	p := writeTemp(t, "m.json", matrixJSON)
	code, out, errOut := runDiff(t, "-inject-regression", "0.5", p, p)
	if code != 1 {
		t.Fatalf("injected regression exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("report does not mark the regression: %s", out)
	}
	if !strings.Contains(errOut, "regression beyond threshold") {
		t.Errorf("stderr verdict missing: %s", errOut)
	}
}

func TestRunReportOnlyRelaxesMetricsNotCoverage(t *testing.T) {
	p := writeTemp(t, "m.json", matrixJSON)
	// Metric regressions: advisory under -report-only.
	if code, out, _ := runDiff(t, "-report-only", "-inject-regression", "0.5", p, p); code != 0 {
		t.Fatalf("-report-only metric regression exit = %d, want 0\n%s", code, out)
	}
	// Coverage loss: still fatal under -report-only.
	one := writeTemp(t, "one.json", `{
  "meta": {"mode": "matrix", "store": "lsm", "git_commit": "abc", "timestamp_utc": "t"},
  "results": {"cells": [
    {"key": "hot-zipf/lsm/c8", "ops_per_sec": 1000, "p99_us": 80, "errors": 0, "shed": 2,
     "cost": {"dollar_per_mop": 0.4}}
  ]}
}`)
	code, _, errOut := runDiff(t, "-report-only", p, one)
	if code != 1 {
		t.Fatalf("-report-only coverage loss exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "coverage") {
		t.Errorf("stderr verdict missing: %s", errOut)
	}
	// -allow-missing tolerates it.
	if code, _, _ := runDiff(t, "-allow-missing", p, one); code != 0 {
		t.Fatalf("-allow-missing exit = %d, want 0", code)
	}
}

func TestRunNewRowsAreInformational(t *testing.T) {
	// Old snapshot has a subset; new snapshot grew a scenario. That is
	// progress, not a regression.
	sub := `{
  "meta": {"mode": "matrix", "store": "lsm", "git_commit": "abc", "timestamp_utc": "t"},
  "results": {"cells": [
    {"key": "hot-zipf/lsm/c8", "ops_per_sec": 1000, "p99_us": 80, "errors": 0, "shed": 2,
     "cost": {"dollar_per_mop": 0.4}}
  ]}
}`
	code, out, _ := runDiff(t, writeTemp(t, "old.json", sub), writeTemp(t, "new.json", matrixJSON))
	if code != 0 {
		t.Fatalf("grown snapshot exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "new row  hot-zipf/masstree/c8") {
		t.Errorf("added row not reported: %s", out)
	}
}

func TestRunCustomThresholds(t *testing.T) {
	oldJSON := `{
  "meta": {"mode": "wire", "store": "m", "git_commit": "a", "timestamp_utc": "t"},
  "results": {"ops_per_sec": 1000}
}`
	newJSON := strings.Replace(oldJSON, "1000", "930", 1) // 7% drop
	oldP, newP := writeTemp(t, "o.json", oldJSON), writeTemp(t, "n.json", newJSON)
	if code, _, _ := runDiff(t, oldP, newP); code != 0 {
		t.Fatal("7% drop should pass the default 10% gate")
	}
	if code, _, _ := runDiff(t, "-throughput", "0.05", oldP, newP); code != 1 {
		t.Fatal("7% drop should fail a 5% gate")
	}
	if code, _, _ := runDiff(t, "-throughput", "0.07", oldP, newP); code != 0 {
		t.Fatal("exactly-at-threshold must pass")
	}
}

func TestRunUsageErrors(t *testing.T) {
	p := writeTemp(t, "m.json", matrixJSON)
	if code, _, _ := runDiff(t); code != 2 {
		t.Error("no args should exit 2")
	}
	if code, _, _ := runDiff(t, p); code != 2 {
		t.Error("one arg should exit 2")
	}
	if code, _, _ := runDiff(t, "-bogus-flag", p, p); code != 2 {
		t.Error("unknown flag should exit 2")
	}
	if code, _, _ := runDiff(t, writeTemp(t, "junk.json", "not json"), p); code != 2 {
		t.Error("unparseable old file should exit 2")
	}
	if code, _, _ := runDiff(t, p, writeTemp(t, "junk2.json", `{"x":1}`)); code != 2 {
		t.Error("schema-less new file should exit 2")
	}
}
