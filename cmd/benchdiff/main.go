// Command benchdiff compares two kvbench benchmark snapshots
// (BENCH_*.json) and enforces regression thresholds, turning the repo's
// persisted perf trajectory into a gate: "measurably faster" means this
// tool, run against the previous snapshot, stays green.
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//
//	benchdiff BENCH_matrix.json BENCH_matrix.new.json
//	benchdiff -throughput 0.05 -latency 0.10 old.json new.json
//	benchdiff -report-only BENCH_matrix.json BENCH_matrix.ci.json
//	benchdiff -inject-regression 0.5 snap.json snap.json   # gate self-test
//
// Rows (matrix cells, or a wire/shard run's single result) are matched by
// key; per-metric deltas are compared under per-class thresholds: allowed
// fractional throughput drop (-throughput), p99 rise (-latency), $/op
// rise (-cost), and absolute errors/shed rise (-error-slack). A change of
// exactly the threshold passes; only strictly worse breaches.
//
// Exit code contract (the CI gate depends on it):
//
//	0  all matched rows within thresholds, no rows lost
//	1  at least one regression beyond threshold, or a row the old
//	   snapshot has is missing from the new one (coverage loss)
//	2  usage error, unreadable file, or unrecognized snapshot schema
//
// -report-only relaxes the metric thresholds (deltas are printed, not
// enforced) but still fails on missing rows: trajectory reporting may be
// advisory across machines, scenario coverage is not.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := DefaultThresholds()
	throughput := fs.Float64("throughput", def.Throughput,
		"allowed fractional ops/sec drop per row (0.10 = 10%)")
	latency := fs.Float64("latency", def.Latency,
		"allowed fractional p99 latency rise per row")
	cost := fs.Float64("cost", def.Cost,
		"allowed fractional $/op rise per row")
	slack := fs.Float64("error-slack", def.CountSlack,
		"allowed absolute rise in errors/shed counts per row")
	shedFrac := fs.Float64("shed-frac", def.ShedFrac,
		"allowed fractional shed rise on overload rows only (they shed by design; effective slack is max(frac*old, 10))")
	reportOnly := fs.Bool("report-only", false,
		"print deltas without enforcing metric thresholds (missing rows still fail)")
	allowMissing := fs.Bool("allow-missing", false,
		"tolerate rows the new snapshot dropped (scenario removed on purpose)")
	inject := fs.Float64("inject-regression", 0,
		"self-test: degrade the NEW snapshot's metrics by this fraction before diffing, proving the thresholds bite")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		fs.PrintDefaults()
		return 2
	}

	oldSF, oldRows, err := LoadRows(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newSF, newRows, err := LoadRows(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if *inject > 0 {
		InjectRegression(newRows, *inject)
		fmt.Fprintf(stdout, "self-test: injected a %.0f%% regression into %s\n", 100**inject, fs.Arg(1))
	}

	th := Thresholds{Throughput: *throughput, Latency: *latency, Cost: *cost,
		CountSlack: *slack, ShedFrac: *shedFrac}
	rep := Diff(oldRows, newRows, th)

	fmt.Fprintf(stdout, "old: %s  (mode=%s commit=%.12s at %s)\n",
		fs.Arg(0), oldSF.Meta.Mode, oldSF.Meta.GitCommit, oldSF.Meta.TimestampUTC)
	fmt.Fprintf(stdout, "new: %s  (mode=%s commit=%.12s at %s)\n",
		fs.Arg(1), newSF.Meta.Mode, newSF.Meta.GitCommit, newSF.Meta.TimestampUTC)
	printDeltas(stdout, rep)
	for _, k := range rep.Missing {
		fmt.Fprintf(stdout, "  MISSING  %s (in old, not in new)\n", k)
	}
	for _, k := range rep.Added {
		fmt.Fprintf(stdout, "  new row  %s\n", k)
	}
	fmt.Fprintf(stdout, "%d rows compared, %d regressions, %d missing, %d added\n",
		len(rep.Matched), rep.Breaches, len(rep.Missing), len(rep.Added))

	if len(rep.Missing) > 0 && !*allowMissing {
		fmt.Fprintln(stderr, "benchdiff: FAIL (coverage: new snapshot lost rows)")
		return 1
	}
	if rep.Breaches > 0 && !*reportOnly {
		fmt.Fprintln(stderr, "benchdiff: FAIL (regression beyond threshold)")
		return 1
	}
	return 0
}

// printDeltas renders one line per matched row with every compared
// metric's old -> new movement, marking breaches.
func printDeltas(w io.Writer, rep Report) {
	byKey := make(map[string][]Delta)
	for _, d := range rep.Deltas {
		byKey[d.Key] = append(byKey[d.Key], d)
	}
	for _, key := range rep.Matched {
		fmt.Fprintf(w, "  %-32s", key)
		for _, d := range byKey[key] {
			mark := ""
			if d.Breach {
				mark = " REGRESSION"
			}
			fmt.Fprintf(w, "  %s %s%s", d.Metric, movement(d.Old, d.New), mark)
		}
		fmt.Fprintln(w)
	}
}

// movement formats "old -> new (+x%)" compactly.
func movement(old, new float64) string {
	s := fmt.Sprintf("%s -> %s", compact(old), compact(new))
	if old > 0 {
		s += fmt.Sprintf(" (%+.1f%%)", 100*(new-old)/old)
	}
	return s
}

// compact trims trailing noise from float rendering.
func compact(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
