// Command experiments runs the measured experiments of the reproduction
// (DESIGN.md D1–D8, A1–A3) on the simulated substrate and prints their
// results — the data EXPERIMENTS.md records against the paper.
//
// Usage:
//
//	experiments               # run everything (a few seconds)
//	experiments -exp R        # one experiment
//	experiments -keys 50000   # scale the keyspace
//
// Experiment names: R, mxpx, pages, writes, blind, recordcache, gc,
// eviction, consolidation, devices, fiveminute.
package main

import (
	"flag"
	"fmt"
	"os"

	"costperf/internal/core"
	"costperf/internal/experiments"
	"costperf/internal/ssd"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	keys := flag.Int("keys", 20000, "keyspace size")
	flag.Parse()

	runs := []struct {
		name string
		fn   func(keys int) (fmt.Stringer, error)
	}{
		{"R", func(k int) (fmt.Stringer, error) {
			return experiments.DeriveR(uint64(k), []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6}, ssd.UserLevelPath)
		}},
		{"fiveminute", func(int) (fmt.Stringer, error) { return fiveMinute{}, nil }},
		{"mxpx", func(k int) (fmt.Stringer, error) { return experiments.MeasureMxPx(uint64(k), 64) }},
		{"pages", func(k int) (fmt.Stringer, error) { return experiments.MeasurePageModel(k, 80) }},
		{"writes", func(k int) (fmt.Stringer, error) { return experiments.MeasureWriteReduction(k/2, k/2, 64) }},
		{"blind", func(k int) (fmt.Stringer, error) { return experiments.MeasureBlindUpdates(k/2, k/4) }},
		{"recordcache", func(k int) (fmt.Stringer, error) { return experiments.MeasureRecordCache(k/2, k/4) }},
		{"gc", func(k int) (fmt.Stringer, error) { return experiments.MeasureGCTradeoff(k/5, 4) }},
		{"eviction", func(k int) (fmt.Stringer, error) { return experiments.MeasureEvictionPolicies(k, k/4) }},
		{"consolidation", func(k int) (fmt.Stringer, error) {
			return experiments.MeasureConsolidationThreshold(k/2, k, []int{2, 4, 8, 16, 32})
		}},
		{"devices", func(int) (fmt.Stringer, error) { return experiments.MeasureDeviceSweep(), nil }},
		{"crossstore", func(k int) (fmt.Stringer, error) { return experiments.MeasureCrossStore(k/4, k/4) }},
		{"latency", func(k int) (fmt.Stringer, error) { return experiments.MeasureLatency(k, k/4) }},
		{"lsmamp", func(k int) (fmt.Stringer, error) { return experiments.MeasureLSMAmplification(k/4, k/2, 100) }},
		{"sensitivity", func(int) (fmt.Stringer, error) { return experiments.MeasureSensitivity() }},
	}

	ran := false
	for _, r := range runs {
		if *exp != "" && r.name != *exp {
			continue
		}
		res, err := r.fn(*keys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// fiveMinute prints the D2 derived quantities straight from the model.
type fiveMinute struct{}

func (fiveMinute) String() string {
	c := core.PaperCosts()
	recTi := c.BreakevenIntervalForSize(c.PageSize / 10)
	return fmt.Sprintf(`D2: the updated five-minute rule (Equation 6)
  page breakeven T_i      = %.1f s   (paper ≈ 45 s)
  breakeven access rate   = %.4f ops/s
  record (P_s/10) T_i     = %.0f s   (Section 6.3: 10 records/page -> 10x the interval)
  storage cost ratio MM/SS = %.1fx  (paper ≈ 11x)
  exec cost ratio SS/MM    = %.1fx  (paper ≈ 12x)
`, c.BreakevenInterval(), c.BreakevenRate(), recTi, c.StorageCostRatio(), c.ExecCostRatio())
}
