package costperf

import (
	"bytes"
	"errors"
	"testing"

	"costperf/internal/tc"
)

func TestDeuteronomyFacadeLifecycle(t *testing.T) {
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := d.Put(Key(i), ValueFor(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := d.Get(Key(7))
	if err != nil || !ok || !bytes.Equal(v, ValueFor(7, 50)) {
		t.Fatalf("get: %v %v", ok, err)
	}
	if err := d.Delete(Key(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get(Key(7)); ok {
		t.Fatal("deleted key visible")
	}
	count := 0
	if err := d.Scan(nil, 0, func(_, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n-1 {
		t.Fatalf("scan count = %d, want %d", count, n-1)
	}
	// Blind put works on evicted pages.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.BlindPut(Key(7), []byte("back")); err != nil {
		t.Fatal(err)
	}
	// Sweep with the default breakeven policy (clock never advanced: no
	// page is older than T_i, so nothing should be evicted).
	evicted, err := d.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Fatalf("evicted %d fresh pages", evicted)
	}
	// Age everything and sweep again.
	d.Session.Clock().Advance(PaperCosts().BreakevenInterval() * 2)
	evicted, err = d.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if evicted == 0 {
		t.Fatal("aged pages not evicted")
	}
	// GC runs.
	if _, err := d.CollectGarbage(); err != nil {
		t.Fatal(err)
	}
}

func TestDeuteronomyCheckpointReopen(t *testing.T) {
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := d.Put(Key(i), ValueFor(i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDeuteronomy(d.Device, DeuteronomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		v, ok, err := d2.Get(Key(i))
		if err != nil || !ok || !bytes.Equal(v, ValueFor(i, 32)) {
			t.Fatalf("recovered key %d wrong (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestFacadeCostModel(t *testing.T) {
	c := PaperCosts()
	ti := c.BreakevenInterval()
	if ti < 40 || ti > 50 {
		t.Fatalf("T_i = %v", ti)
	}
	if _, err := DeriveR(1, 1, 0); err == nil {
		t.Fatal("DeriveR with F=0 should error")
	}
	if got := MixedThroughput(100, 0, 5.8); got != 100 {
		t.Fatalf("MixedThroughput F=0 = %v", got)
	}
	fig := Figure2(c, 50)
	if _, ok := Crossover(fig.Series[0], fig.Series[1]); !ok {
		t.Fatal("Figure2 has no crossover")
	}
}

func TestFacadeMassTreeAndLSM(t *testing.T) {
	sess := NewSession(DefaultCostProfile())
	mt := NewMassTree(sess)
	mt.Put([]byte("k"), []byte("v"))
	if v, ok := mt.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("masstree facade broken")
	}
	l, err := NewLSM(nil, sess)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := l.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatal("lsm facade broken")
	}
}

func TestFacadeTransactional(t *testing.T) {
	d, err := NewDeuteronomy(DeuteronomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	txc, err := NewTransactional(d.Tree, nil, d.Session)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := txc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write([]byte("acct"), []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := txc.Begin()
	if v, ok, err := tx2.Read([]byte("acct")); err != nil || !ok || string(v) != "100" {
		t.Fatalf("transactional read: %v %v", ok, err)
	}
	// Conflict semantics surface through the facade.
	a, _ := txc.Begin()
	b, _ := txc.Begin()
	a.Write([]byte("acct"), []byte("1"))
	b.Write([]byte("acct"), []byte("2"))
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, tc.ErrConflict) {
		t.Fatalf("second committer err = %v", err)
	}
}

func TestFacadeWorkload(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{
		Keys: 100, Mix: ReadMostly, Chooser: NewZipfianChooser(1, 0.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		op := gen.Next()
		if len(op.Key) != 8 {
			t.Fatal("bad key from generator")
		}
	}
}
