GO ?= go

.PHONY: check build test race vet bench

check: ## vet + build + full tests + race pass on the storage stack
	sh scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bwtree ./internal/llama/... ./internal/tc \
		./internal/ssd ./internal/fault ./internal/lsm ./internal/metrics \
		./internal/engine ./internal/integration

bench:
	$(GO) test -bench=. -benchmem ./...
